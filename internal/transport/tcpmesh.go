package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"socflow/internal/metrics"
)

// Per-op deadline defaults. An op that makes no progress for the
// deadline is retried with exponential backoff up to the retry budget,
// then fails — a worker whose peer has silently vanished unwinds
// instead of blocking forever. The defaults are generous relative to
// any legitimate compute gap between collectives.
const (
	DefaultOpTimeout = 30 * time.Second
	DefaultOpRetries = 2
)

// TCPMesh is a Mesh whose links are real TCP connections on loopback:
// every unordered pair of nodes shares one connection, with a reader
// goroutine demultiplexing inbound frames into a per-peer queue. This
// is the realistic transport — framing, flow control, and byte copies
// all happen as they would between SoCs.
type TCPMesh struct {
	n     int
	nodes []*tcpNode
	done  chan struct{} // closed by Close; unblocks Send/Recv waits

	opTimeout time.Duration
	opRetries int

	// Reliability counters, installed by SetMetrics; nil-safe no-ops
	// otherwise.
	cRetries      *metrics.Counter
	cDeadlineHits *metrics.Counter

	mu     sync.Mutex
	closed bool
}

// SetMetrics installs reliability counters: transport.tcp.retries
// counts retried Send/Recv attempts, transport.tcp.deadline.hits
// counts per-attempt deadline expiries. Call before training traffic;
// a nil registry leaves the no-op counters in place.
func (m *TCPMesh) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.cRetries = reg.Counter("transport.tcp.retries")
	m.cDeadlineHits = reg.Counter("transport.tcp.deadline.hits")
}

// NewTCPMesh builds an n-node mesh on 127.0.0.1. Each node listens on
// an ephemeral port; node i dials every node j > i, and the first
// frame on each connection announces the dialer's ID.
func NewTCPMesh(n int) (*TCPMesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: mesh needs at least one node")
	}
	m := &TCPMesh{n: n, done: make(chan struct{}), opTimeout: DefaultOpTimeout, opRetries: DefaultOpRetries}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		listeners[i] = l
		m.nodes = append(m.nodes, newTCPNode(m, i, n))
	}

	// Accept loop per node, run until its expected peers have arrived.
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer listeners[i].Close()
			// Node i accepts connections from every lower-numbered peer.
			seen := make(map[int]bool, i)
			for k := 0; k < i; k++ {
				conn, err := listeners[i].Accept()
				if err != nil {
					errs <- fmt.Errorf("transport: node %d accept: %w", i, err)
					return
				}
				peer, err := handshakePeer(conn, i)
				if err != nil {
					conn.Close()
					errs <- fmt.Errorf("transport: node %d: %w", i, err)
					return
				}
				if seen[peer] {
					conn.Close()
					errs <- fmt.Errorf("transport: node %d: duplicate handshake from peer %d", i, peer)
					return
				}
				seen[peer] = true
				m.nodes[i].attach(peer, conn)
			}
		}(i)
	}
	// Dial every higher-numbered peer.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conn, err := net.Dial("tcp", listeners[j].Addr().String())
			if err != nil {
				m.Close()
				wg.Wait()
				return nil, fmt.Errorf("transport: dial %d->%d: %w", i, j, err)
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(i))
			if _, err := conn.Write(hdr[:]); err != nil {
				m.Close()
				wg.Wait()
				return nil, err
			}
			m.nodes[i].attach(j, conn)
		}
	}
	wg.Wait()
	// Drain every accept error, not just the first: a bad handshake on
	// one node must not mask failures on others.
	close(errs)
	var acceptErrs []error
	for err := range errs {
		acceptErrs = append(acceptErrs, err)
	}
	if len(acceptErrs) > 0 {
		m.Close()
		return nil, errors.Join(acceptErrs...)
	}
	return m, nil
}

// handshakePeer reads the 4-byte peer announcement and validates it
// against the acceptor's expected range [0, limit) — a corrupt or
// hostile ID must be rejected, not used to index conns.
func handshakePeer(r io.Reader, limit int) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	peer := binary.LittleEndian.Uint32(hdr[:])
	if uint64(peer) >= uint64(limit) {
		return 0, fmt.Errorf("handshake announced peer %d, want [0,%d)", peer, limit)
	}
	return int(peer), nil
}

// SetOpDeadline overrides the per-attempt Send/Recv deadline and the
// retry budget (retries < 0 keeps the default). Call it before any
// traffic; it is not synchronized with in-flight ops.
func (m *TCPMesh) SetOpDeadline(d time.Duration, retries int) {
	if d > 0 {
		m.opTimeout = d
	}
	if retries >= 0 {
		m.opRetries = retries
	}
}

// Size implements Mesh.
func (m *TCPMesh) Size() int { return m.n }

// Node implements Mesh.
func (m *TCPMesh) Node(i int) Node { return m.nodes[i] }

// Close implements Mesh.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	close(m.done)
	for _, nd := range m.nodes {
		nd.close()
	}
	return nil
}

type tcpNode struct {
	mesh *TCPMesh
	id   int
	n    int

	mu    sync.Mutex
	conns []net.Conn
	wmu   []sync.Mutex
	inbox []chan []byte
	ready []chan struct{} // closed when conns[peer] is attached
}

func newTCPNode(m *TCPMesh, id, n int) *tcpNode {
	nd := &tcpNode{
		mesh:  m,
		id:    id,
		n:     n,
		conns: make([]net.Conn, n),
		wmu:   make([]sync.Mutex, n),
		inbox: make([]chan []byte, n),
		ready: make([]chan struct{}, n),
	}
	for i := range nd.inbox {
		nd.inbox[i] = make(chan []byte, 64)
		nd.ready[i] = make(chan struct{})
	}
	return nd
}

func (nd *tcpNode) attach(peer int, conn net.Conn) {
	nd.mu.Lock()
	nd.conns[peer] = conn
	close(nd.ready[peer])
	nd.mu.Unlock()
	go func() {
		for {
			msg, err := readFrame(conn)
			if err != nil {
				close(nd.inbox[peer])
				return
			}
			nd.inbox[peer] <- msg
		}
	}()
}

func (nd *tcpNode) close() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for _, c := range nd.conns {
		if c != nil {
			c.Close()
		}
	}
}

func (nd *tcpNode) ID() int   { return nd.id }
func (nd *tcpNode) Size() int { return nd.n }

// countWriter tracks whether any bytes reached the connection, which
// decides whether a timed-out frame write is retryable: once part of a
// frame is on the wire, a retry would corrupt the peer's framing.
type countWriter struct {
	w io.Writer
	n int
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += n
	return n, err
}

func (nd *tcpNode) Send(to int, payload []byte) error {
	if to < 0 || to >= nd.n || to == nd.id {
		return fmt.Errorf("transport: node %d cannot send to %d", nd.id, to)
	}
	// The peer may never attach if the mesh is torn down during
	// construction; never wait on ready without also watching done.
	select {
	case <-nd.ready[to]:
	case <-nd.mesh.done:
		return fmt.Errorf("%w while %d sends to %d", ErrMeshClosed, nd.id, to)
	}
	nd.wmu[to].Lock()
	defer nd.wmu[to].Unlock()
	conn := nd.conns[to]
	backoff := 10 * time.Millisecond
	var err error
	for attempt := 0; attempt <= nd.mesh.opRetries; attempt++ {
		if attempt > 0 {
			nd.mesh.cRetries.Inc()
			select {
			case <-time.After(backoff):
			case <-nd.mesh.done:
				return fmt.Errorf("%w while %d sends to %d", ErrMeshClosed, nd.id, to)
			}
			backoff *= 2
		}
		conn.SetWriteDeadline(time.Now().Add(nd.mesh.opTimeout))
		cw := &countWriter{w: conn}
		err = writeFrame(cw, payload)
		if err == nil {
			conn.SetWriteDeadline(time.Time{})
			return nil
		}
		// Retry only a clean timeout with nothing on the wire; a partial
		// frame (or any other failure) is fatal for the stream.
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			break
		}
		nd.mesh.cDeadlineHits.Inc()
		if cw.n != 0 {
			break
		}
	}
	select {
	case <-nd.mesh.done:
		return fmt.Errorf("%w while %d sends to %d: %v", ErrMeshClosed, nd.id, to, err)
	default:
	}
	return fmt.Errorf("transport: send %d->%d: %w", nd.id, to, err)
}

func (nd *tcpNode) Recv(from int) ([]byte, error) {
	if from < 0 || from >= nd.n || from == nd.id {
		return nil, fmt.Errorf("transport: node %d cannot recv from %d", nd.id, from)
	}
	wait := nd.mesh.opTimeout
	for attempt := 0; attempt <= nd.mesh.opRetries; attempt++ {
		timer := time.NewTimer(wait)
		select {
		case msg, ok := <-nd.inbox[from]:
			timer.Stop()
			if !ok {
				return nil, fmt.Errorf("transport: link %d->%d closed", from, nd.id)
			}
			return msg, nil
		case <-nd.mesh.done:
			timer.Stop()
			return nil, fmt.Errorf("%w while %d recvs from %d", ErrMeshClosed, nd.id, from)
		case <-timer.C:
			nd.mesh.cDeadlineHits.Inc()
			if attempt < nd.mesh.opRetries {
				nd.mesh.cRetries.Inc()
			}
			wait *= 2 // deadline backoff before the next bounded wait
		}
	}
	return nil, fmt.Errorf("transport: recv %d<-%d: no frame within %d attempts of %v", nd.id, from, nd.mesh.opRetries+1, nd.mesh.opTimeout)
}
