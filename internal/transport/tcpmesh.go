package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPMesh is a Mesh whose links are real TCP connections on loopback:
// every unordered pair of nodes shares one connection, with a reader
// goroutine demultiplexing inbound frames into a per-peer queue. This
// is the realistic transport — framing, flow control, and byte copies
// all happen as they would between SoCs.
type TCPMesh struct {
	n     int
	nodes []*tcpNode

	mu     sync.Mutex
	closed bool
}

// NewTCPMesh builds an n-node mesh on 127.0.0.1. Each node listens on
// an ephemeral port; node i dials every node j > i, and the first
// frame on each connection announces the dialer's ID.
func NewTCPMesh(n int) (*TCPMesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: mesh needs at least one node")
	}
	m := &TCPMesh{n: n}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		listeners[i] = l
		m.nodes = append(m.nodes, newTCPNode(m, i, n))
	}

	// Accept loop per node, run until its expected peers have arrived.
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer listeners[i].Close()
			// Node i accepts connections from every lower-numbered peer.
			for k := 0; k < i; k++ {
				conn, err := listeners[i].Accept()
				if err != nil {
					errs <- err
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					errs <- err
					return
				}
				peer := int(binary.LittleEndian.Uint32(hdr[:]))
				m.nodes[i].attach(peer, conn)
			}
		}(i)
	}
	// Dial every higher-numbered peer.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conn, err := net.Dial("tcp", listeners[j].Addr().String())
			if err != nil {
				m.Close()
				return nil, fmt.Errorf("transport: dial %d->%d: %w", i, j, err)
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(i))
			if _, err := conn.Write(hdr[:]); err != nil {
				m.Close()
				return nil, err
			}
			m.nodes[i].attach(j, conn)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		m.Close()
		return nil, err
	default:
	}
	return m, nil
}

// Size implements Mesh.
func (m *TCPMesh) Size() int { return m.n }

// Node implements Mesh.
func (m *TCPMesh) Node(i int) Node { return m.nodes[i] }

// Close implements Mesh.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for _, nd := range m.nodes {
		nd.close()
	}
	return nil
}

type tcpNode struct {
	mesh *TCPMesh
	id   int
	n    int

	mu    sync.Mutex
	conns []net.Conn
	wmu   []sync.Mutex
	inbox []chan []byte
	ready []chan struct{} // closed when conns[peer] is attached
}

func newTCPNode(m *TCPMesh, id, n int) *tcpNode {
	nd := &tcpNode{
		mesh:  m,
		id:    id,
		n:     n,
		conns: make([]net.Conn, n),
		wmu:   make([]sync.Mutex, n),
		inbox: make([]chan []byte, n),
		ready: make([]chan struct{}, n),
	}
	for i := range nd.inbox {
		nd.inbox[i] = make(chan []byte, 64)
		nd.ready[i] = make(chan struct{})
	}
	return nd
}

func (nd *tcpNode) attach(peer int, conn net.Conn) {
	nd.mu.Lock()
	nd.conns[peer] = conn
	close(nd.ready[peer])
	nd.mu.Unlock()
	go func() {
		for {
			msg, err := readFrame(conn)
			if err != nil {
				close(nd.inbox[peer])
				return
			}
			nd.inbox[peer] <- msg
		}
	}()
}

func (nd *tcpNode) close() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for _, c := range nd.conns {
		if c != nil {
			c.Close()
		}
	}
}

func (nd *tcpNode) ID() int   { return nd.id }
func (nd *tcpNode) Size() int { return nd.n }

func (nd *tcpNode) Send(to int, payload []byte) error {
	if to < 0 || to >= nd.n || to == nd.id {
		return fmt.Errorf("transport: node %d cannot send to %d", nd.id, to)
	}
	<-nd.ready[to]
	nd.wmu[to].Lock()
	defer nd.wmu[to].Unlock()
	return writeFrame(nd.conns[to], payload)
}

func (nd *tcpNode) Recv(from int) ([]byte, error) {
	if from < 0 || from >= nd.n || from == nd.id {
		return nil, fmt.Errorf("transport: node %d cannot recv from %d", nd.id, from)
	}
	msg, ok := <-nd.inbox[from]
	if !ok {
		return nil, fmt.Errorf("transport: link %d->%d closed", from, nd.id)
	}
	return msg, nil
}
