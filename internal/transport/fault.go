package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"socflow/internal/tensor"
)

// Fault injection: a seeded, deterministic FaultPlan describes worker
// crashes, link drops, and stragglers at chosen (epoch, iteration)
// points, and WithFaults applies the plan to any Mesh. The SoC-Cluster
// premise is that training shares chips with live user traffic (§2.2):
// SoCs get preempted mid-round, links stall, thermal governors turn
// chips into stragglers. The plan is part of the job configuration, so
// — like the batch schedule — every node can re-derive the same fault
// timeline from it; that is what makes degraded-mode membership
// decisions coordination-free.

// ErrInjectedCrash marks transport errors caused by an injected worker
// crash, so tests and the runtime can tell scripted faults from real
// transport failures with errors.Is.
var ErrInjectedCrash = errors.New("transport: injected crash")

// ErrInjectedLinkDrop marks errors from an injected link failure.
var ErrInjectedLinkDrop = errors.New("transport: injected link drop")

// IterEpochEnd is the iteration value of the epoch-boundary clock
// point: every per-iteration trigger of epoch e orders before
// (e, IterEpochEnd), which in turn orders before (e+1, 0). Using one
// sentinel for "end of epoch e" keeps liveness decisions identical
// across groups whose shards yield different iteration counts.
const IterEpochEnd = 1<<31 - 1

// FaultKind enumerates injectable failures.
type FaultKind uint8

const (
	// FaultCrash kills a node from its trigger point on: every later
	// Send/Recv by the node fails with ErrInjectedCrash. A crash with
	// an Until point clears there — the node's endpoint works again —
	// modelling a preemption window instead of a permanent loss.
	FaultCrash FaultKind = iota
	// FaultLinkDrop severs the directed link Node->Peer from the
	// trigger point on (optionally until the event's Until point).
	FaultLinkDrop
	// FaultStraggle delays each of the node's sends by Delay during
	// exactly the trigger iteration — a transient slow SoC.
	FaultStraggle
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultLinkDrop:
		return "linkdrop"
	case FaultStraggle:
		return "straggle"
	}
	return fmt.Sprintf("faultkind(%d)", uint8(k))
}

// FaultEvent is one scripted failure.
type FaultEvent struct {
	Kind FaultKind
	// Node is the failing node (crash, straggle) or the link source
	// (link drop).
	Node int
	// Peer is the link target; only meaningful for FaultLinkDrop.
	Peer int
	// Epoch and Iter locate the trigger point. Crash and link-drop
	// events are in effect at every point >= (Epoch, Iter) in
	// lexicographic order; straggle fires only at exactly that point.
	Epoch, Iter int
	// UntilEpoch and UntilIter optionally bound a crash or link drop:
	// the fault is active on [(Epoch,Iter), (UntilEpoch,UntilIter)) and
	// clears at the until point — a preempted SoC handed back when the
	// co-located user traffic ebbs. Both zero means the fault is
	// permanent, which keeps every pre-existing plan's semantics.
	UntilEpoch, UntilIter int
	// Delay is the injected per-send latency of a straggle event.
	Delay time.Duration
}

// activeAt reports whether a crash/link-drop event is in effect at the
// clock point now.
func (ev *FaultEvent) activeAt(now uint64) bool {
	if point(ev.Epoch, ev.Iter) > now {
		return false
	}
	if ev.UntilEpoch != 0 || ev.UntilIter != 0 {
		if point(ev.UntilEpoch, ev.UntilIter) <= now {
			return false
		}
	}
	return true
}

// FaultPlan is an immutable, shared fault script. A nil plan injects
// nothing.
type FaultPlan struct {
	Events []FaultEvent
}

// RandomCrashPlan builds a deterministic plan that crashes `crashes`
// distinct nodes of an n-node mesh at the start of seeded epochs.
// Epoch 0 is spared when the budget allows, so every run keeps a
// fault-free baseline epoch.
func RandomCrashPlan(seed uint64, n, epochs, crashes int) *FaultPlan {
	if crashes > n {
		crashes = n
	}
	p := &FaultPlan{}
	if crashes <= 0 || epochs <= 0 {
		return p
	}
	r := tensor.NewRNG(seed)
	victims := r.Perm(n)[:crashes]
	for _, v := range victims {
		epoch := 0
		if epochs > 1 {
			epoch = 1 + r.Intn(epochs-1)
		}
		p.Events = append(p.Events, FaultEvent{Kind: FaultCrash, Node: v, Epoch: epoch})
	}
	return p
}

// point totally orders (epoch, iter) pairs.
func point(epoch, iter int) uint64 { return uint64(epoch)<<32 | uint64(uint32(iter)) }

// CrashPoint returns the earliest crash trigger for a node.
func (p *FaultPlan) CrashPoint(node int) (epoch, iter int, ok bool) {
	if p == nil {
		return 0, 0, false
	}
	best := uint64(0)
	for _, ev := range p.Events {
		if ev.Kind != FaultCrash || ev.Node != node {
			continue
		}
		pt := point(ev.Epoch, ev.Iter)
		if !ok || pt < best {
			best, epoch, iter, ok = pt, ev.Epoch, ev.Iter, true
		}
	}
	return epoch, iter, ok
}

// CrashedAt reports whether the node is down at (epoch, iter): some
// crash event's window covers the point. Permanent crashes (no until
// point) cover everything from their trigger on.
func (p *FaultPlan) CrashedAt(node, epoch, iter int) bool {
	if p == nil {
		return false
	}
	now := point(epoch, iter)
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Kind == FaultCrash && ev.Node == node && ev.activeAt(now) {
			return true
		}
	}
	return false
}

// CrashWindow returns the earliest crash event for a node, with its
// until point (ok=false for nodes the plan never crashes; until ok
// only for bounded, recoverable crashes).
func (p *FaultPlan) CrashWindow(node int) (ev FaultEvent, ok bool) {
	if p == nil {
		return FaultEvent{}, false
	}
	best := uint64(0)
	for _, e := range p.Events {
		if e.Kind != FaultCrash || e.Node != node {
			continue
		}
		pt := point(e.Epoch, e.Iter)
		if !ok || pt < best {
			best, ev, ok = pt, e, true
		}
	}
	return ev, ok
}

// Live filters members down to the nodes not crashed at (epoch, iter),
// preserving order. With a nil plan it returns members unchanged.
func (p *FaultPlan) Live(members []int, epoch, iter int) []int {
	if p == nil {
		return members
	}
	out := make([]int, 0, len(members))
	for _, m := range members {
		if !p.CrashedAt(m, epoch, iter) {
			out = append(out, m)
		}
	}
	return out
}

// Crashes returns how many distinct nodes the plan ever crashes.
func (p *FaultPlan) Crashes() int {
	if p == nil {
		return 0
	}
	seen := map[int]bool{}
	for _, ev := range p.Events {
		if ev.Kind == FaultCrash {
			seen[ev.Node] = true
		}
	}
	return len(seen)
}

// FaultTicker is implemented by the nodes of a FaultyMesh. The runtime
// ticks each worker's clock at every iteration and epoch boundary;
// fault triggers are evaluated against the last tick.
type FaultTicker interface {
	TickFault(epoch, iter int)
}

// FaultyMesh decorates any Mesh with a FaultPlan. Nodes are wrapped
// once and cached so their fault clocks persist across Node calls.
type FaultyMesh struct {
	inner Mesh
	plan  *FaultPlan
	nodes []*faultyNode
}

// WithFaults wraps mesh so plan's events fire against it. Closing the
// FaultyMesh closes the underlying mesh.
func WithFaults(mesh Mesh, plan *FaultPlan) *FaultyMesh {
	fm := &FaultyMesh{inner: mesh, plan: plan, nodes: make([]*faultyNode, mesh.Size())}
	for i := range fm.nodes {
		fm.nodes[i] = &faultyNode{Node: mesh.Node(i), plan: plan}
	}
	return fm
}

// Plan returns the plan the mesh injects.
func (m *FaultyMesh) Plan() *FaultPlan { return m.plan }

// Size implements Mesh.
func (m *FaultyMesh) Size() int { return m.inner.Size() }

// Node implements Mesh.
func (m *FaultyMesh) Node(i int) Node { return m.nodes[i] }

// Close implements Mesh.
func (m *FaultyMesh) Close() error { return m.inner.Close() }

type faultyNode struct {
	Node  // the wrapped endpoint; ID and Size promote unchanged
	plan  *FaultPlan
	clock atomic.Uint64 // point(epoch, iter) of the last tick
}

// TickFault implements FaultTicker.
func (n *faultyNode) TickFault(epoch, iter int) { n.clock.Store(point(epoch, iter)) }

func (n *faultyNode) at() (int, int) {
	c := n.clock.Load()
	return int(c >> 32), int(uint32(c))
}

func (n *faultyNode) Send(to int, payload []byte) error {
	epoch, iter := n.at()
	id := n.ID()
	now := point(epoch, iter)
	for i := range n.plan.Events {
		ev := &n.plan.Events[i]
		switch ev.Kind {
		case FaultCrash:
			if ev.Node == id && ev.activeAt(now) {
				return fmt.Errorf("%w: node %d at epoch %d iter %d", ErrInjectedCrash, id, ev.Epoch, ev.Iter)
			}
		case FaultLinkDrop:
			if ev.Node == id && ev.Peer == to && ev.activeAt(now) {
				return fmt.Errorf("%w: link %d->%d at epoch %d iter %d", ErrInjectedLinkDrop, id, to, ev.Epoch, ev.Iter)
			}
		case FaultStraggle:
			if ev.Node == id && ev.Epoch == epoch && ev.Iter == iter && ev.Delay > 0 {
				time.Sleep(ev.Delay)
			}
		}
	}
	return n.Node.Send(to, payload)
}

func (n *faultyNode) Recv(from int) ([]byte, error) {
	epoch, iter := n.at()
	id := n.ID()
	now := point(epoch, iter)
	for i := range n.plan.Events {
		ev := &n.plan.Events[i]
		switch ev.Kind {
		case FaultCrash:
			if ev.Node == id && ev.activeAt(now) {
				return nil, fmt.Errorf("%w: node %d at epoch %d iter %d", ErrInjectedCrash, id, ev.Epoch, ev.Iter)
			}
		case FaultLinkDrop:
			if ev.Node == from && ev.Peer == id && ev.activeAt(now) {
				return nil, fmt.Errorf("%w: link %d->%d at epoch %d iter %d", ErrInjectedLinkDrop, from, id, ev.Epoch, ev.Iter)
			}
		}
	}
	return n.Node.Recv(from)
}
