package transport

import (
	"fmt"
	"sync"
)

// ChanMesh is an in-process Mesh: every directed pair of nodes gets a
// buffered channel. It is deterministic, allocation-light, and fast —
// the default for unit tests and for the runtime's correctness
// validation.
type ChanMesh struct {
	n     int
	links [][]chan []byte // links[from][to]
	done  chan struct{}   // closed by Close; unblocks Send/Recv
	once  sync.Once
}

// NewChanMesh builds an n-node in-process mesh. Buffer depth bounds
// how far a sender can run ahead of its receiver.
func NewChanMesh(n int) *ChanMesh {
	if n <= 0 {
		panic("transport: mesh needs at least one node")
	}
	m := &ChanMesh{n: n, links: make([][]chan []byte, n), done: make(chan struct{})}
	for i := range m.links {
		m.links[i] = make([]chan []byte, n)
		for j := range m.links[i] {
			if i != j {
				m.links[i][j] = make(chan []byte, 64)
			}
		}
	}
	return m
}

// Size implements Mesh.
func (m *ChanMesh) Size() int { return m.n }

// Node implements Mesh.
func (m *ChanMesh) Node(i int) Node {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("transport: node %d out of range", i))
	}
	return &chanNode{mesh: m, id: i}
}

// Close implements Mesh. It unblocks every pending and future Send and
// Recv with an error, so workers stuck in a collective unwind promptly
// (the cancellation path runtime.RunDistributed relies on). Close is
// idempotent.
func (m *ChanMesh) Close() error {
	m.once.Do(func() { close(m.done) })
	return nil
}

type chanNode struct {
	mesh *ChanMesh
	id   int
}

func (n *chanNode) ID() int   { return n.id }
func (n *chanNode) Size() int { return n.mesh.n }

func (n *chanNode) Send(to int, payload []byte) error {
	if to < 0 || to >= n.mesh.n || to == n.id {
		return fmt.Errorf("transport: node %d cannot send to %d", n.id, to)
	}
	// Closed-mesh check first: with buffer space free the select below
	// would otherwise pick a case at random after Close.
	select {
	case <-n.mesh.done:
		return fmt.Errorf("%w while %d sends to %d", ErrMeshClosed, n.id, to)
	default:
	}
	// Copy so the caller may reuse its buffer, matching TCP semantics.
	msg := append([]byte(nil), payload...)
	select {
	case n.mesh.links[n.id][to] <- msg:
		return nil
	case <-n.mesh.done:
		return fmt.Errorf("%w while %d sends to %d", ErrMeshClosed, n.id, to)
	}
}

func (n *chanNode) Recv(from int) ([]byte, error) {
	if from < 0 || from >= n.mesh.n || from == n.id {
		return nil, fmt.Errorf("transport: node %d cannot recv from %d", n.id, from)
	}
	select {
	case <-n.mesh.done:
		return nil, fmt.Errorf("%w while %d recvs from %d", ErrMeshClosed, n.id, from)
	default:
	}
	select {
	case msg := <-n.mesh.links[from][n.id]:
		return msg, nil
	case <-n.mesh.done:
		return nil, fmt.Errorf("%w while %d recvs from %d", ErrMeshClosed, n.id, from)
	}
}
