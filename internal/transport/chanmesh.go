package transport

import "fmt"

// ChanMesh is an in-process Mesh: every directed pair of nodes gets a
// buffered channel. It is deterministic, allocation-light, and fast —
// the default for unit tests and for the runtime's correctness
// validation.
type ChanMesh struct {
	n     int
	links [][]chan []byte // links[from][to]
}

// NewChanMesh builds an n-node in-process mesh. Buffer depth bounds
// how far a sender can run ahead of its receiver.
func NewChanMesh(n int) *ChanMesh {
	if n <= 0 {
		panic("transport: mesh needs at least one node")
	}
	m := &ChanMesh{n: n, links: make([][]chan []byte, n)}
	for i := range m.links {
		m.links[i] = make([]chan []byte, n)
		for j := range m.links[i] {
			if i != j {
				m.links[i][j] = make(chan []byte, 64)
			}
		}
	}
	return m
}

// Size implements Mesh.
func (m *ChanMesh) Size() int { return m.n }

// Node implements Mesh.
func (m *ChanMesh) Node(i int) Node {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("transport: node %d out of range", i))
	}
	return &chanNode{mesh: m, id: i}
}

// Close implements Mesh. Channels are garbage-collected; Close only
// exists for interface symmetry.
func (m *ChanMesh) Close() error { return nil }

type chanNode struct {
	mesh *ChanMesh
	id   int
}

func (n *chanNode) ID() int   { return n.id }
func (n *chanNode) Size() int { return n.mesh.n }

func (n *chanNode) Send(to int, payload []byte) error {
	if to < 0 || to >= n.mesh.n || to == n.id {
		return fmt.Errorf("transport: node %d cannot send to %d", n.id, to)
	}
	// Copy so the caller may reuse its buffer, matching TCP semantics.
	msg := append([]byte(nil), payload...)
	n.mesh.links[n.id][to] <- msg
	return nil
}

func (n *chanNode) Recv(from int) ([]byte, error) {
	if from < 0 || from >= n.mesh.n || from == n.id {
		return nil, fmt.Errorf("transport: node %d cannot recv from %d", n.id, from)
	}
	msg, ok := <-n.mesh.links[from][n.id]
	if !ok {
		return nil, fmt.Errorf("transport: link %d->%d closed", from, n.id)
	}
	return msg, nil
}
