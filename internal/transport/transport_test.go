package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip %q", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversize frame must be rejected on write")
	}
	// Corrupted length prefix on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversize frame must be rejected on read")
	}
}

func TestFrameShortRead(t *testing.T) {
	buf := bytes.NewBuffer([]byte{8, 0, 0, 0, 1, 2}) // announces 8 bytes, has 2
	if _, err := readFrame(buf); err == nil {
		t.Fatal("truncated frame must error")
	}
}

func TestChanMeshSendRecvOrdering(t *testing.T) {
	m := NewChanMesh(2)
	a, b := m.Node(0), m.Node(1)
	for i := byte(0); i < 10; i++ {
		if err := a.Send(1, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 10; i++ {
		msg, err := b.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		if msg[0] != i {
			t.Fatalf("out of order: got %d want %d", msg[0], i)
		}
	}
}

func TestChanMeshCopiesPayload(t *testing.T) {
	m := NewChanMesh(2)
	buf := []byte{1, 2, 3}
	if err := m.Node(0).Send(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller reuses its buffer
	msg, err := m.Node(1).Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if msg[0] != 1 {
		t.Fatal("Send must copy the payload")
	}
}

func TestChanMeshRejectsBadTargets(t *testing.T) {
	m := NewChanMesh(2)
	if err := m.Node(0).Send(0, nil); err == nil {
		t.Fatal("self-send must error")
	}
	if err := m.Node(0).Send(5, nil); err == nil {
		t.Fatal("out-of-range send must error")
	}
	if _, err := m.Node(0).Recv(0); err == nil {
		t.Fatal("self-recv must error")
	}
}

func TestTCPMeshBidirectionalTraffic(t *testing.T) {
	m, err := NewTCPMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	// Every ordered pair exchanges a message concurrently.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				if err := m.Node(i).Send(j, []byte{byte(10*i + j)}); err != nil {
					errs <- err
				}
			}(i, j)
		}
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			msg, err := m.Node(j).Recv(i)
			if err != nil {
				t.Fatal(err)
			}
			if msg[0] != byte(10*i+j) {
				t.Fatalf("wrong payload %d from %d->%d", msg[0], i, j)
			}
		}
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestTCPMeshLargePayload(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() { done <- m.Node(0).Send(1, big) }()
	msg, err := m.Node(1).Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(msg) != len(big) || msg[12345] != big[12345] {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPMeshRecvAfterCloseErrors(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Node(0).Recv(1); err == nil {
		t.Fatal("recv on closed mesh must error")
	}
}

func TestTCPMeshDoubleCloseSafe(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("double close must be safe")
	}
}

// Regression: Send used to block forever on <-ready[to] if the mesh
// was torn down before the peer attached (a failed construction or an
// early Close). It must now observe the done channel and fail.
func TestTCPMeshSendBeforeAttachUnblocksOnClose(t *testing.T) {
	m := &TCPMesh{n: 2, done: make(chan struct{}), opTimeout: DefaultOpTimeout, opRetries: DefaultOpRetries}
	m.nodes = []*tcpNode{newTCPNode(m, 0, 2), newTCPNode(m, 1, 2)}
	errc := make(chan error, 1)
	go func() { errc <- m.Node(0).Send(1, []byte{1}) }()
	time.Sleep(10 * time.Millisecond) // let the send park on ready
	m.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrMeshClosed) {
			t.Fatalf("send = %v, want ErrMeshClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send still blocked after mesh close")
	}
}

func TestHandshakePeerValidation(t *testing.T) {
	frame := func(id uint32) *bytes.Reader {
		var hdr [4]byte
		hdr[0], hdr[1], hdr[2], hdr[3] = byte(id), byte(id>>8), byte(id>>16), byte(id>>24)
		return bytes.NewReader(hdr[:])
	}
	if p, err := handshakePeer(frame(2), 3); err != nil || p != 2 {
		t.Fatalf("valid handshake = (%d, %v)", p, err)
	}
	// An out-of-range announcement used to panic attach via conns[peer];
	// it must be rejected instead.
	if _, err := handshakePeer(frame(3), 3); err == nil {
		t.Fatal("peer == limit must be rejected")
	}
	if _, err := handshakePeer(frame(0xffffffff), 3); err == nil {
		t.Fatal("huge peer ID must be rejected")
	}
	if _, err := handshakePeer(bytes.NewReader([]byte{1, 2}), 3); err == nil {
		t.Fatal("truncated handshake must error")
	}
}

// A silent peer must not park Recv forever: the per-op deadline with
// bounded retries turns it into an error.
func TestTCPMeshRecvDeadlineExpires(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetOpDeadline(20*time.Millisecond, 1)
	start := time.Now()
	if _, err := m.Node(0).Recv(1); err == nil {
		t.Fatal("recv from a silent peer must hit the deadline")
	} else if errors.Is(err, ErrMeshClosed) {
		t.Fatalf("deadline error must not claim the mesh closed: %v", err)
	}
	// 20ms + 40ms backoff, plus slack: far below a hang.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v", elapsed)
	}
}

func TestTCPMeshSendAfterCloseErrors(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Node(0).Send(1, []byte{1}); !errors.Is(err, ErrMeshClosed) {
		t.Fatalf("send after close = %v, want ErrMeshClosed", err)
	}
	if _, err := m.Node(1).Recv(0); err == nil {
		t.Fatal("recv after close must error")
	}
}

// Mid-collective teardown: a Recv already parked on its inbox must
// unwind when the mesh closes underneath it.
func TestTCPMeshCloseUnblocksPendingRecv(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := m.Node(0).Recv(1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("recv must error when the mesh closes")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv still blocked after mesh close")
	}
}

func TestTCPMeshSendRejectsOversizedPayload(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Node(0).Send(1, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized payload must be rejected before hitting the wire")
	}
}

func TestChanMeshClosedErrorsWrapSentinel(t *testing.T) {
	m := NewChanMesh(2)
	m.Close()
	if err := m.Node(0).Send(1, nil); !errors.Is(err, ErrMeshClosed) {
		t.Fatalf("send = %v, want ErrMeshClosed", err)
	}
	if _, err := m.Node(0).Recv(1); !errors.Is(err, ErrMeshClosed) {
		t.Fatalf("recv = %v, want ErrMeshClosed", err)
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := NewTCPMesh(0); err == nil {
		t.Fatal("zero-node TCP mesh must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-node chan mesh must panic")
		}
	}()
	NewChanMesh(0)
}
