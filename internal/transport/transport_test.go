package transport

import (
	"bytes"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip %q", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversize frame must be rejected on write")
	}
	// Corrupted length prefix on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversize frame must be rejected on read")
	}
}

func TestFrameShortRead(t *testing.T) {
	buf := bytes.NewBuffer([]byte{8, 0, 0, 0, 1, 2}) // announces 8 bytes, has 2
	if _, err := readFrame(buf); err == nil {
		t.Fatal("truncated frame must error")
	}
}

func TestChanMeshSendRecvOrdering(t *testing.T) {
	m := NewChanMesh(2)
	a, b := m.Node(0), m.Node(1)
	for i := byte(0); i < 10; i++ {
		if err := a.Send(1, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 10; i++ {
		msg, err := b.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		if msg[0] != i {
			t.Fatalf("out of order: got %d want %d", msg[0], i)
		}
	}
}

func TestChanMeshCopiesPayload(t *testing.T) {
	m := NewChanMesh(2)
	buf := []byte{1, 2, 3}
	if err := m.Node(0).Send(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller reuses its buffer
	msg, err := m.Node(1).Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if msg[0] != 1 {
		t.Fatal("Send must copy the payload")
	}
}

func TestChanMeshRejectsBadTargets(t *testing.T) {
	m := NewChanMesh(2)
	if err := m.Node(0).Send(0, nil); err == nil {
		t.Fatal("self-send must error")
	}
	if err := m.Node(0).Send(5, nil); err == nil {
		t.Fatal("out-of-range send must error")
	}
	if _, err := m.Node(0).Recv(0); err == nil {
		t.Fatal("self-recv must error")
	}
}

func TestTCPMeshBidirectionalTraffic(t *testing.T) {
	m, err := NewTCPMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	// Every ordered pair exchanges a message concurrently.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				if err := m.Node(i).Send(j, []byte{byte(10*i + j)}); err != nil {
					errs <- err
				}
			}(i, j)
		}
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			msg, err := m.Node(j).Recv(i)
			if err != nil {
				t.Fatal(err)
			}
			if msg[0] != byte(10*i+j) {
				t.Fatalf("wrong payload %d from %d->%d", msg[0], i, j)
			}
		}
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestTCPMeshLargePayload(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() { done <- m.Node(0).Send(1, big) }()
	msg, err := m.Node(1).Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(msg) != len(big) || msg[12345] != big[12345] {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPMeshRecvAfterCloseErrors(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Node(0).Recv(1); err == nil {
		t.Fatal("recv on closed mesh must error")
	}
}

func TestTCPMeshDoubleCloseSafe(t *testing.T) {
	m, err := NewTCPMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("double close must be safe")
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := NewTCPMesh(0); err == nil {
		t.Fatal("zero-node TCP mesh must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-node chan mesh must panic")
		}
	}()
	NewChanMesh(0)
}
