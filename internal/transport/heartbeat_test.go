package transport

import (
	"errors"
	"testing"
	"time"

	"socflow/internal/metrics"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	plan := &FaultPlan{Events: []FaultEvent{{Kind: FaultCrash, Node: 2, Epoch: 0, Iter: 0}}}
	hb := WithHeartbeat(WithFaults(NewChanMesh(3), plan), 2*time.Millisecond, 40*time.Millisecond, nil)
	defer hb.Close()

	// Trip node 2's fault clock: from here on its endpoint — beats
	// included — fails, and the only evidence peers get is silence.
	for i := 0; i < 3; i++ {
		hb.Node(i).(FaultTicker).TickFault(0, 0)
	}
	waitFor(t, 2*time.Second, func() bool { return !hb.Alive(2) }, "node 2 declared dead")
	if !hb.Alive(0) || !hb.Alive(1) {
		t.Fatalf("live nodes misjudged: alive(0)=%v alive(1)=%v", hb.Alive(0), hb.Alive(1))
	}
}

func TestHeartbeatDataRoundtripAndGenerationFencing(t *testing.T) {
	hb := WithHeartbeat(NewChanMesh(2), time.Millisecond, 50*time.Millisecond, nil)
	defer hb.Close()

	n0, n1 := hb.Node(0), hb.Node(1)
	if err := n0.Send(1, []byte("gen0-stale")); err != nil {
		t.Fatalf("send: %v", err)
	}
	hb.SetGeneration(0, 1)
	hb.SetGeneration(1, 1)
	if err := n0.Send(1, []byte("gen1-fresh")); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := n1.Recv(0)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(got) != "gen1-fresh" {
		t.Fatalf("recv got %q, want the gen-1 frame (gen-0 must be fenced out)", got)
	}
}

// Satellite regression: a Recv parked on a peer that died mid-handshake
// (never sent a byte) must unblock on mesh close with ErrMeshClosed,
// not hang forever.
func TestHeartbeatRecvUnblocksOnMeshClose(t *testing.T) {
	hb := WithHeartbeat(NewChanMesh(2), time.Millisecond, 50*time.Millisecond, nil)
	errc := make(chan error, 1)
	go func() {
		_, err := hb.Node(0).Recv(1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the Recv park
	hb.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrMeshClosed) {
			t.Fatalf("Recv returned %v, want ErrMeshClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after mesh close")
	}
}

func TestHeartbeatInterruptResume(t *testing.T) {
	hb := WithHeartbeat(NewChanMesh(2), time.Millisecond, 50*time.Millisecond, nil)
	defer hb.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := hb.Node(0).Recv(1)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	hb.Interrupt(0, ErrRoundAborted)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrRoundAborted) {
			t.Fatalf("interrupted Recv returned %v, want ErrRoundAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv ignored the interrupt")
	}
	if err := hb.Node(0).Send(1, []byte("x")); !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("interrupted Send returned %v, want ErrRoundAborted", err)
	}

	hb.Resume(0)
	if err := hb.Node(1).Send(0, []byte("after-resume")); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := hb.Node(0).Recv(1)
	if err != nil || string(got) != "after-resume" {
		t.Fatalf("post-resume recv = %q, %v", got, err)
	}
}

func TestHeartbeatDeadPeerFastFail(t *testing.T) {
	hb := WithHeartbeat(NewChanMesh(2), time.Millisecond, 50*time.Millisecond, nil)
	defer hb.Close()

	hb.MarkDead(1)
	if err := hb.Node(0).Send(1, []byte("x")); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("Send to dead peer returned %v, want ErrPeerDead", err)
	}
	if _, err := hb.Node(0).Recv(1); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("Recv from dead peer returned %v, want ErrPeerDead", err)
	}
}

// A bounded crash window plus MarkAlive/ResetStreams re-admits a node:
// its endpoint works again and fresh data flows end to end.
func TestHeartbeatRejoinAfterCrashWindow(t *testing.T) {
	plan := &FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrash, Node: 1, Epoch: 1, Iter: 0, UntilEpoch: 3, UntilIter: 0},
	}}
	hb := WithHeartbeat(WithFaults(NewChanMesh(2), plan), 2*time.Millisecond, 40*time.Millisecond, nil)
	defer hb.Close()

	// Enter the crash window and let the detector see the silence.
	for i := 0; i < 2; i++ {
		hb.Node(i).(FaultTicker).TickFault(1, 0)
	}
	if err := hb.Node(1).Send(0, []byte("x")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crashed node Send returned %v, want ErrInjectedCrash", err)
	}
	waitFor(t, 2*time.Second, func() bool { return !hb.Alive(1) }, "node 1 declared dead")
	hb.MarkDead(1)

	// The preemption window ends: tick past Until, re-admit, reset.
	for i := 0; i < 2; i++ {
		hb.Node(i).(FaultTicker).TickFault(3, 0)
	}
	hb.MarkAlive(1)
	hb.ResetStreams(1)
	hb.SetGeneration(0, 7)
	hb.SetGeneration(1, 7)

	if err := hb.Node(0).Send(1, []byte("state-transfer")); err != nil {
		t.Fatalf("send to rejoined node: %v", err)
	}
	got, err := hb.Node(1).Recv(0)
	if err != nil || string(got) != "state-transfer" {
		t.Fatalf("rejoined recv = %q, %v", got, err)
	}
	waitFor(t, 2*time.Second, func() bool { return hb.Alive(1) }, "node 1 beating again")
}

// Control-plane traffic lands in transport.control.*, while a metered
// mesh stacked outside the heartbeat layer keeps counting pure
// data-plane payload bytes.
func TestHeartbeatControlPlaneCountersSeparate(t *testing.T) {
	reg := metrics.New()
	hb := WithHeartbeat(NewChanMesh(2), time.Millisecond, 50*time.Millisecond, reg)
	top := WithMetrics(hb, reg)
	defer top.Close()

	payload := []byte("0123456789")
	if err := top.Node(0).Send(1, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got, err := top.Node(1).Recv(0); err != nil || len(got) != len(payload) {
		t.Fatalf("recv = %d bytes, %v", len(got), err)
	}

	if got := reg.Counter("transport.sent.bytes").Value(); got != int64(len(payload)) {
		t.Fatalf("data-plane sent bytes = %d, want %d (beats and headers must not leak in)", got, len(payload))
	}
	waitFor(t, 2*time.Second, func() bool {
		return reg.Counter("transport.control.sent.msgs").Value() > 0 &&
			reg.Counter("transport.control.recv.msgs").Value() > 0
	}, "control-plane counters to move")
}
