package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"socflow/internal/cluster"
)

func defaultTrace() *cluster.TidalTrace {
	tr := cluster.DefaultTidalTrace()
	return &tr
}

// fakeRun builds a channel-driven segment runner: each segment start
// is announced on begin, and every epoch waits for one token on step.
// The test is the clock — there are no sleeps anywhere in this file.
// With a non-nil ack, the runner confirms each epoch (including its
// park decision) before proceeding, so tests can interleave
// deterministically.
func fakeRun(epochs int, begin chan *Controller, step chan struct{}, ack chan struct{}) RunFunc {
	return func(ctx context.Context, ctl *Controller) (any, error) {
		begin <- ctl
		for e := ctl.StartEpoch(); e < epochs; e++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-step:
			}
			ctl.ObserveEpoch(e)
			parked := ctl.ParkRequested() && e+1 < epochs
			if ack != nil {
				ack <- struct{}{}
			}
			if parked {
				return nil, ErrParked
			}
		}
		return "trained", nil
	}
}

func TestJobLifecycle(t *testing.T) {
	s := New(Config{TotalSoCs: 8})
	defer s.Close()
	begin := make(chan *Controller)
	step := make(chan struct{})
	id, err := s.Submit(JobSpec{Tenant: "a", SoCs: 4, Epochs: 2, Run: fakeRun(2, begin, step, nil)})
	if err != nil {
		t.Fatal(err)
	}
	ctl := <-begin
	if ctl.StartEpoch() != 0 {
		t.Fatalf("fresh job StartEpoch = %d", ctl.StartEpoch())
	}
	if st, _ := s.Get(id); st.State != JobRunning {
		t.Fatalf("state = %s, want running", st.State)
	}
	step <- struct{}{}
	step <- struct{}{}
	result, err := s.Wait(context.Background(), id)
	if err != nil || result != "trained" {
		t.Fatalf("Wait = %v, %v", result, err)
	}
	st, _ := s.Get(id)
	if st.State != JobDone || st.EpochsDone != 2 {
		t.Fatalf("final status: %+v", st)
	}
}

func TestPriorityPreemptionAndResume(t *testing.T) {
	s := New(Config{TotalSoCs: 8})
	defer s.Close()

	loBegin, loStep, loAck := make(chan *Controller), make(chan struct{}), make(chan struct{})
	lo, err := s.Submit(JobSpec{Tenant: "a", Priority: 0, SoCs: 8, Epochs: 4,
		Preemptible: true, Run: fakeRun(4, loBegin, loStep, loAck)})
	if err != nil {
		t.Fatal(err)
	}
	loCtl := <-loBegin
	if loCtl.StartEpoch() != 0 {
		t.Fatalf("lo StartEpoch = %d", loCtl.StartEpoch())
	}
	loStep <- struct{}{} // lo runs epoch 0...
	<-loAck              // ...and has decided not to park

	hiBegin, hiStep := make(chan *Controller), make(chan struct{})
	hi, err := s.Submit(JobSpec{Tenant: "b", Priority: 9, SoCs: 8, Epochs: 1,
		Run: fakeRun(1, hiBegin, hiStep, nil)})
	if err != nil {
		t.Fatal(err)
	}
	// Submission reschedules synchronously: lo must now be parking.
	if st, _ := s.Get(lo); st.State != JobParking {
		t.Fatalf("lo state after hi submit = %s, want parking", st.State)
	}
	if !loCtl.ParkRequested() {
		t.Fatal("lo controller not asked to park")
	}

	loStep <- struct{}{} // lo reaches the epoch-1 boundary and parks
	<-loAck
	<-hiBegin // ...which frees the cluster for hi
	if st, _ := s.Get(lo); st.State != JobParked || st.EpochsDone != 2 || st.Parks != 1 {
		t.Fatalf("lo parked status: %+v", st)
	}

	hiStep <- struct{}{}
	if _, err := s.Wait(context.Background(), hi); err != nil {
		t.Fatal(err)
	}

	// hi's exit resumes lo from where it parked.
	loCtl2 := <-loBegin
	if loCtl2.StartEpoch() != 2 {
		t.Fatalf("resume StartEpoch = %d, want 2", loCtl2.StartEpoch())
	}
	for e := 2; e < 4; e++ {
		loStep <- struct{}{}
		<-loAck
	}
	if _, err := s.Wait(context.Background(), lo); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Get(lo)
	if st.State != JobDone || st.EpochsDone != 4 || st.Parks != 1 || st.Resumes != 1 {
		t.Fatalf("lo final status: %+v", st)
	}
}

func TestTenantQuotaHeldAcrossQueue(t *testing.T) {
	s := New(Config{
		TotalSoCs: 16,
		Quotas:    map[string]Quota{"a": {MaxRunningJobs: 1}},
	})
	defer s.Close()

	mk := func(tenant string) (string, chan *Controller, chan struct{}) {
		begin, step := make(chan *Controller, 1), make(chan struct{})
		id, err := s.Submit(JobSpec{Tenant: tenant, SoCs: 2, Epochs: 1, Run: fakeRun(1, begin, step, nil)})
		if err != nil {
			t.Fatal(err)
		}
		return id, begin, step
	}
	a1, a1b, a1s := mk("a")
	a2, _, a2s := mk("a")
	b1, _, b1s := mk("b")

	<-a1b // a1 running; a2 must be held back by the quota
	if st, _ := s.Get(a2); st.State != JobQueued {
		t.Fatalf("a2 state = %s, want queued", st.State)
	}
	if st, _ := s.Get(b1); st.State != JobRunning {
		t.Fatalf("b1 state = %s, want running (other tenant unaffected)", st.State)
	}

	a1s <- struct{}{} // a1 finishes; a2 may now start
	if _, err := s.Wait(context.Background(), a1); err != nil {
		t.Fatal(err)
	}
	a2s <- struct{}{}
	b1s <- struct{}{}
	if _, err := s.Wait(context.Background(), a2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), b1); err != nil {
		t.Fatal(err)
	}
	if got := s.PeakRunning("a"); got != 1 {
		t.Fatalf("tenant a peak concurrency = %d, want 1", got)
	}
}

func TestSubmitRejections(t *testing.T) {
	s := New(Config{
		TotalSoCs:  4,
		QueueLimit: 1,
		Quotas:     map[string]Quota{"capped": {MaxSoCs: 2}},
	})
	defer s.Close()

	if _, err := s.Submit(JobSpec{}); err == nil {
		t.Fatal("nil Run must be rejected")
	}
	if _, err := s.Submit(JobSpec{SoCs: 8, Run: fakeRun(1, make(chan *Controller, 1), nil, nil)}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("oversize job: %v", err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "capped", SoCs: 3, Run: fakeRun(1, make(chan *Controller, 1), nil, nil)}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota job: %v", err)
	}

	// Fill the cluster, then the one queue slot, then overflow.
	begin, step := make(chan *Controller), make(chan struct{})
	if _, err := s.Submit(JobSpec{SoCs: 4, Epochs: 1, Run: fakeRun(1, begin, step, nil)}); err != nil {
		t.Fatal(err)
	}
	<-begin
	if _, err := s.Submit(JobSpec{SoCs: 4, Epochs: 1, Run: fakeRun(1, make(chan *Controller, 1), nil, nil)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{SoCs: 4, Run: fakeRun(1, make(chan *Controller, 1), nil, nil)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v", err)
	}
	close(step)

	s.Close()
	if _, err := s.Submit(JobSpec{Run: fakeRun(1, make(chan *Controller, 1), nil, nil)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Config{TotalSoCs: 4})
	defer s.Close()

	begin, step := make(chan *Controller), make(chan struct{})
	running, err := s.Submit(JobSpec{SoCs: 4, Epochs: 3, Run: fakeRun(3, begin, step, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-begin
	queued, err := s.Submit(JobSpec{SoCs: 4, Run: fakeRun(1, make(chan *Controller, 1), nil, nil)})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), queued); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel error: %v", err)
	}

	if err := s.Cancel(running); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), running); !errors.Is(err, context.Canceled) {
		t.Fatalf("running cancel error: %v", err)
	}
	if st, _ := s.Get(running); st.State != JobCanceled {
		t.Fatalf("state after cancel: %+v", st)
	}
	if err := s.Cancel(running); err != nil {
		t.Fatal("cancel of terminal job must be a no-op")
	}
	if err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// Tidal packing across the simulated day: jobs submitted at the peak
// wait; advancing the clock into the trough starts them all.
func TestTidalWindowPacking(t *testing.T) {
	s := New(Config{
		TotalSoCs: 32,
		Tidal:     defaultTrace(),
		Hour:      14.5, // daytime peak: capacity 32*0.15 = 4
	})
	defer s.Close()

	begins := make([]chan *Controller, 3)
	steps := make([]chan struct{}, 3)
	ids := make([]string, 3)
	for i := range ids {
		begins[i], steps[i] = make(chan *Controller, 1), make(chan struct{})
		id, err := s.Submit(JobSpec{Tenant: "t", SoCs: 8, Epochs: 1, Run: fakeRun(1, begins[i], steps[i], nil)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if st, _ := s.Get(id); st.State != JobQueued {
			t.Fatalf("peak-hour job %s state = %s, want queued", id, st.State)
		}
	}
	if c := s.Capacity(); c >= 8 {
		t.Fatalf("peak capacity = %d, expected < 8", c)
	}

	s.SetHour(2.5) // deep trough: capacity 30
	for i, id := range ids {
		<-begins[i]
		if st, _ := s.Get(id); st.State != JobRunning {
			t.Fatalf("trough job %s state = %s, want running", id, st.State)
		}
	}
	for i, id := range ids {
		steps[i] <- struct{}{}
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOnTerminalFiresOnce(t *testing.T) {
	s := New(Config{TotalSoCs: 4})
	defer s.Close()
	fired := make(chan struct{}, 2)
	begin, step := make(chan *Controller), make(chan struct{})
	id, err := s.Submit(JobSpec{SoCs: 1, Epochs: 1,
		Run: fakeRun(1, begin, step, nil), OnTerminal: func() { fired <- struct{}{} }})
	if err != nil {
		t.Fatal(err)
	}
	<-begin
	step <- struct{}{}
	if _, err := s.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	<-fired
	select {
	case <-fired:
		t.Fatal("OnTerminal fired twice")
	default:
	}
}

func TestListOrderAndUnknown(t *testing.T) {
	s := New(Config{TotalSoCs: 4})
	defer s.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		begin := make(chan *Controller, 1)
		id, err := s.Submit(JobSpec{SoCs: 1, Epochs: 0, Run: fakeRun(0, begin, nil, nil)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("list length %d", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("list out of submission order: %+v", list)
		}
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Get unknown: %v", err)
	}
	if _, err := s.Wait(context.Background(), "nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait unknown: %v", err)
	}
}

// The co-location protocol end to end: a non-preemptible serving job
// widens its footprint with the request tide via Controller.Resize,
// the overflow-parking path squeezes preemptible training off the
// cluster at its next epoch boundary, and the ebb resumes it from
// where it parked. One time.Sleep-free exception: the park transition
// happens on the segment goroutine, so the test polls for it.
func TestResizeSqueezesTraining(t *testing.T) {
	s := New(Config{TotalSoCs: 12})
	defer s.Close()

	waitState := func(id string, want State) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			if st, _ := s.Get(id); st.State == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		st, _ := s.Get(id)
		t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
	}

	// Serving holds 2 SoCs at the trough and never parks.
	srvBegin := make(chan *Controller, 1)
	srvDone := make(chan struct{})
	srvID, err := s.Submit(JobSpec{Tenant: "web", Priority: 9, SoCs: 2,
		Run: func(ctx context.Context, ctl *Controller) (any, error) {
			srvBegin <- ctl
			<-srvDone
			return "served", nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	srvCtl := <-srvBegin

	// Training fills most of the rest.
	trBegin, trStep, trAck := make(chan *Controller, 1), make(chan struct{}), make(chan struct{})
	trID, err := s.Submit(JobSpec{Tenant: "lab", SoCs: 8, Epochs: 4,
		Preemptible: true, Run: fakeRun(4, trBegin, trStep, trAck)})
	if err != nil {
		t.Fatal(err)
	}
	<-trBegin
	trStep <- struct{}{} // epoch 0 completes...
	<-trAck              // ...before the tide rises

	// The tide rises: serving needs 10 of the 12 SoCs. Training (8)
	// no longer fits and must be told to park.
	srvCtl.Resize(10)
	if st, _ := s.Get(srvID); st.SoCs != 10 {
		t.Fatalf("serving SoCs after resize = %d, want 10", st.SoCs)
	}
	if st, _ := s.Get(trID); st.State != JobParking {
		t.Fatalf("training state after serving grew = %s, want parking", st.State)
	}
	trStep <- struct{}{} // training reaches the epoch-1 boundary and parks
	<-trAck
	waitState(trID, JobParked)

	// While the tide is high, training stays off the cluster.
	if st, _ := s.Get(trID); st.EpochsDone != 2 || st.Parks != 1 {
		t.Fatalf("parked training status: %+v", st)
	}

	// Resize clamps to the cluster size.
	srvCtl.Resize(100)
	if st, _ := s.Get(srvID); st.SoCs != 12 {
		t.Fatalf("resize past TotalSoCs gave %d, want clamp to 12", st.SoCs)
	}

	// The tide ebbs: serving narrows, training resumes from epoch 2.
	srvCtl.Resize(2)
	ctl2 := <-trBegin
	if ctl2.StartEpoch() != 2 {
		t.Fatalf("resume StartEpoch = %d, want 2", ctl2.StartEpoch())
	}
	trStep <- struct{}{}
	<-trAck
	trStep <- struct{}{}
	<-trAck
	res, err := s.Wait(context.Background(), trID)
	if err != nil {
		t.Fatal(err)
	}
	if res != "trained" {
		t.Fatalf("training result = %v", res)
	}
	if st, _ := s.Get(trID); st.Resumes != 1 {
		t.Fatalf("training resumes = %d, want 1", st.Resumes)
	}

	close(srvDone)
	if _, err := s.Wait(context.Background(), srvID); err != nil {
		t.Fatal(err)
	}
}

// Drain is the graceful-shutdown path: running preemptible work is
// parked through the normal checkpoint request instead of canceled, so
// a later server generation can resume it; non-preemptible and queued
// jobs are canceled; parked jobs stay parked.
func TestDrainParksPreemptibleJobs(t *testing.T) {
	s := New(Config{TotalSoCs: 8})
	begin := make(chan *Controller, 2)
	stepP := make(chan struct{})
	ackP := make(chan struct{})
	stepH := make(chan struct{})

	pre, err := s.Submit(JobSpec{Tenant: "a", SoCs: 4, Epochs: 4, Preemptible: true, Run: fakeRun(4, begin, stepP, ackP)})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := s.Submit(JobSpec{Tenant: "a", SoCs: 4, Epochs: 4, Run: fakeRun(4, begin, stepH, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-begin
	<-begin
	queued, err := s.Submit(JobSpec{Tenant: "a", SoCs: 4, Epochs: 4, Run: fakeRun(4, begin, stepH, nil)})
	if err != nil {
		t.Fatal(err)
	}

	// Let the preemptible job finish epoch 0 before the drain begins.
	stepP <- struct{}{}
	<-ackP

	drained := make(chan int, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain marks the preemptible job parking synchronously; wait for
	// the request, then step the job to its next epoch boundary where
	// it honors it.
	for {
		if st, _ := s.Get(pre); st.State == JobParking {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stepP <- struct{}{}
	<-ackP

	if n := <-drained; n != 1 {
		t.Fatalf("Drain parked %d jobs, want 1", n)
	}
	if st, _ := s.Get(pre); st.State != JobParked || st.EpochsDone != 2 {
		t.Fatalf("preemptible job: %+v, want parked after 2 epochs", st)
	}
	if st, _ := s.Get(hard); st.State != JobCanceled {
		t.Fatalf("non-preemptible job: %+v, want canceled", st)
	}
	if st, _ := s.Get(queued); st.State != JobCanceled {
		t.Fatalf("queued job: %+v, want canceled", st)
	}
	if _, err := s.Submit(JobSpec{Tenant: "a", SoCs: 1, Epochs: 1, Run: fakeRun(1, begin, stepH, nil)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after drain: %v, want ErrClosed", err)
	}
}
