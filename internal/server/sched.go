// Package server is the multi-tenant control plane: a long-lived
// scheduler that admits many concurrent training jobs over one
// simulated SoC-Cluster. It enforces per-tenant quotas, runs a
// priority scheduler with checkpoint-based preemption (a low-priority
// job is parked at an epoch boundary and later resumed from its
// latest checkpoint — the paper's §3 preemption lifted from one
// logical group to a whole job), and packs work into the idle windows
// of the tidal utilization trace.
//
// The scheduling core below is a pure function over value snapshots so
// every admission, quota, preemption, and packing decision is
// deterministic and table-testable without goroutines or clocks.
package server

import (
	"math"
	"sort"

	"socflow/internal/cluster"
)

// Quota bounds one tenant's share of the cluster. Zero fields mean
// unlimited.
type Quota struct {
	// MaxRunningJobs caps how many of the tenant's jobs may run (or
	// hold a reservation) concurrently.
	MaxRunningJobs int `json:"max_running_jobs"`
	// MaxSoCs caps the tenant's total SoCs across its running jobs. A
	// single job asking for more than MaxSoCs is rejected at submit.
	MaxSoCs int `json:"max_socs"`
}

// Capacity is the number of SoCs the scheduler may hand to training at
// the given hour of day. With no trace the whole cluster is available;
// with a tidal trace, only the idle fraction is — training harvests the
// trough and shrinks at the daytime peak.
func Capacity(total int, tr *cluster.TidalTrace, hour float64) int {
	if total < 0 {
		total = 0
	}
	if tr == nil {
		return total
	}
	idle := 1 - tr.BusyFraction(hour)
	if idle < 0 {
		idle = 0
	}
	return int(math.Floor(float64(total)*idle + 1e-9))
}

// schedJob is the scheduler's view of a pending (queued or parked)
// job.
type schedJob struct {
	id       string
	tenant   string
	priority int
	socs     int
	seq      uint64 // submission order; earlier wins ties
}

// schedRunning is the scheduler's view of a job currently holding
// SoCs. A parking job has been told to stop but has not yet reached an
// epoch boundary: it still occupies its SoCs, but its capacity is
// already earmarked for the high-priority job that evicted it.
type schedRunning struct {
	schedJob
	preemptible bool
	parking     bool
}

// decision is one scheduling round's output: jobs to start now and
// running jobs to park. A high-priority job whose capacity must come
// from victims that are still parking appears in neither list — its
// reservation is re-derived next round, when the victims have exited.
type decision struct {
	Start []string
	Park  []string
}

// planSchedule decides one round. If the cluster is oversubscribed —
// capacity fell below what running jobs hold — preemptible victims are
// parked, cheapest first, until the overflow is covered. Pending jobs
// are then considered in (priority desc, submission asc) order. Each is
// checked against its tenant quota, then started if it fits in free
// capacity, granted a reservation against capacity that parking jobs
// will free, or — if still short — granted a reservation by parking
// enough lower-priority preemptible victims. Jobs that cannot be served
// this round are skipped, letting smaller or lower-priority work
// backfill.
func planSchedule(pending []schedJob, running []schedRunning, capacity int, quota func(string) Quota) decision {
	used := 0
	tenantJobs := map[string]int{}
	tenantSoCs := map[string]int{}
	for _, r := range running {
		used += r.socs
		tenantJobs[r.tenant]++
		tenantSoCs[r.tenant] += r.socs
	}
	avail := capacity - used
	if avail < 0 {
		avail = 0
	}

	// SoCs being vacated by already-parking jobs: spendable as
	// reservations, not as immediate starts.
	parkingPool := 0
	for _, r := range running {
		if r.parking {
			parkingPool += r.socs
		}
	}

	order := append([]schedJob(nil), pending...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].priority != order[j].priority {
			return order[i].priority > order[j].priority
		}
		return order[i].seq < order[j].seq
	})

	victims := make([]schedRunning, 0, len(running))
	for _, r := range running {
		if r.preemptible && !r.parking {
			victims = append(victims, r)
		}
	}
	// Cheapest victims first: lowest priority, most recently admitted.
	sort.SliceStable(victims, func(i, j int) bool {
		if victims[i].priority != victims[j].priority {
			return victims[i].priority < victims[j].priority
		}
		return victims[i].seq > victims[j].seq
	})
	parked := map[string]bool{}

	var d decision

	// A capacity cut — the serving tenant widening with the request
	// tide, a tightened hour, a shrunk quota-free pool — can leave the
	// cluster oversubscribed. Park preemptible victims, cheapest first,
	// until the overflow is covered; capacity already draining through
	// parking jobs counts toward it. Non-preemptible jobs are never
	// touched, so a cut deeper than the preemptible pool leaves the
	// cluster transiently oversubscribed rather than killing work.
	if overflow := used - capacity; overflow > 0 {
		overflow -= parkingPool
		for _, v := range victims {
			if overflow <= 0 {
				break
			}
			parked[v.id] = true
			d.Park = append(d.Park, v.id)
			parkingPool += v.socs
			overflow -= v.socs
		}
		// Only what parking jobs free beyond the cut remains grantable
		// as reservations below.
		parkingPool -= used - capacity
		if parkingPool < 0 {
			parkingPool = 0
		}
	}

	for _, p := range order {
		q := quota(p.tenant)
		if q.MaxRunningJobs > 0 && tenantJobs[p.tenant]+1 > q.MaxRunningJobs {
			continue
		}
		if q.MaxSoCs > 0 && tenantSoCs[p.tenant]+p.socs > q.MaxSoCs {
			continue
		}

		if p.socs <= avail {
			d.Start = append(d.Start, p.id)
			avail -= p.socs
			tenantJobs[p.tenant]++
			tenantSoCs[p.tenant] += p.socs
			continue
		}

		// Not enough free capacity. See whether a reservation can be
		// covered by capacity already draining (parkingPool) plus, for
		// what remains, by evicting strictly lower-priority victims.
		need := p.socs - avail - parkingPool
		reclaim := 0
		var chosen []string
		if need > 0 {
			for _, v := range victims {
				if parked[v.id] || v.priority >= p.priority {
					continue
				}
				chosen = append(chosen, v.id)
				reclaim += v.socs
				if reclaim >= need {
					break
				}
			}
		}
		if avail+parkingPool+reclaim < p.socs {
			continue // cannot be served this round; let others backfill
		}
		for _, id := range chosen {
			parked[id] = true
			d.Park = append(d.Park, id)
		}
		// Reserve: consume free capacity first, then the draining pool
		// (which the new parks just enlarged). The job itself starts on
		// a later round, once its victims have actually exited.
		pool := parkingPool + reclaim
		fromAvail := p.socs
		if fromAvail > avail {
			fromAvail = avail
		}
		avail -= fromAvail
		parkingPool = pool - (p.socs - fromAvail)
		tenantJobs[p.tenant]++
		tenantSoCs[p.tenant] += p.socs
	}
	return d
}
