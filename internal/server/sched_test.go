package server

import (
	"reflect"
	"testing"

	"socflow/internal/cluster"
)

func noQuota(string) Quota { return Quota{} }

func TestCapacityTidal(t *testing.T) {
	trv := cluster.DefaultTidalTrace()
	tr := &trv
	cases := []struct {
		name  string
		total int
		tr    *cluster.TidalTrace
		hour  float64
		want  func(int) bool
	}{
		{"no trace", 32, nil, 14.5, func(c int) bool { return c == 32 }},
		{"trough frees most of the cluster", 32, tr, 2.5, func(c int) bool { return c >= 28 }},
		{"peak leaves only the idle sliver", 32, tr, 14.5, func(c int) bool { return c <= 6 }},
		{"zero cluster", 0, tr, 2.5, func(c int) bool { return c == 0 }},
	}
	for _, c := range cases {
		got := Capacity(c.total, c.tr, c.hour)
		if !c.want(got) {
			t.Errorf("%s: Capacity(%d, hour=%.1f) = %d", c.name, c.total, c.hour, got)
		}
		if got < 0 || got > c.total {
			t.Errorf("%s: capacity %d out of [0,%d]", c.name, got, c.total)
		}
	}
	if Capacity(32, tr, 2.5) <= Capacity(32, tr, 14.5) {
		t.Error("trough capacity must exceed peak capacity")
	}
}

func TestPlanScheduleTable(t *testing.T) {
	cases := []struct {
		name     string
		pending  []schedJob
		running  []schedRunning
		capacity int
		quota    func(string) Quota
		want     decision
	}{
		{
			name: "admission in priority then submission order",
			pending: []schedJob{
				{id: "a", tenant: "t", priority: 0, socs: 4, seq: 1},
				{id: "b", tenant: "t", priority: 5, socs: 4, seq: 2},
				{id: "c", tenant: "t", priority: 5, socs: 4, seq: 3},
			},
			capacity: 8,
			quota:    noQuota,
			want:     decision{Start: []string{"b", "c"}},
		},
		{
			name: "smaller job backfills around one that cannot fit",
			pending: []schedJob{
				{id: "big", tenant: "t", priority: 9, socs: 16, seq: 1},
				{id: "small", tenant: "t", priority: 0, socs: 4, seq: 2},
			},
			capacity: 8,
			quota:    noQuota,
			want:     decision{Start: []string{"small"}},
		},
		{
			name: "quota caps running jobs per tenant",
			pending: []schedJob{
				{id: "a2", tenant: "a", priority: 0, socs: 2, seq: 2},
				{id: "b1", tenant: "b", priority: 0, socs: 2, seq: 3},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "a1", tenant: "a", priority: 0, socs: 2, seq: 1}},
			},
			capacity: 16,
			quota: func(tenant string) Quota {
				if tenant == "a" {
					return Quota{MaxRunningJobs: 1}
				}
				return Quota{}
			},
			want: decision{Start: []string{"b1"}},
		},
		{
			name: "quota caps tenant SoCs",
			pending: []schedJob{
				{id: "a2", tenant: "a", priority: 0, socs: 6, seq: 2},
				{id: "a3", tenant: "a", priority: 0, socs: 2, seq: 3},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "a1", tenant: "a", priority: 0, socs: 4, seq: 1}},
			},
			capacity: 16,
			quota:    func(string) Quota { return Quota{MaxSoCs: 8} },
			want:     decision{Start: []string{"a3"}},
		},
		{
			name: "high priority parks the cheapest preemptible victim",
			pending: []schedJob{
				{id: "hi", tenant: "t", priority: 9, socs: 8, seq: 3},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "lo1", tenant: "t", priority: 1, socs: 8, seq: 1}, preemptible: true},
				{schedJob: schedJob{id: "lo2", tenant: "t", priority: 0, socs: 8, seq: 2}, preemptible: true},
			},
			capacity: 16,
			quota:    noQuota,
			want:     decision{Park: []string{"lo2"}},
		},
		{
			name: "equal priority never preempts",
			pending: []schedJob{
				{id: "peer", tenant: "t", priority: 5, socs: 8, seq: 2},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "lo", tenant: "t", priority: 5, socs: 8, seq: 1}, preemptible: true},
			},
			capacity: 8,
			quota:    noQuota,
			want:     decision{},
		},
		{
			name: "non-preemptible jobs are safe",
			pending: []schedJob{
				{id: "hi", tenant: "t", priority: 9, socs: 8, seq: 2},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "lo", tenant: "t", priority: 0, socs: 8, seq: 1}},
			},
			capacity: 8,
			quota:    noQuota,
			want:     decision{},
		},
		{
			name: "parking capacity is reserved, not re-parked and not squattable",
			pending: []schedJob{
				{id: "hi", tenant: "t", priority: 9, socs: 8, seq: 3},
				{id: "lo2", tenant: "t", priority: 0, socs: 8, seq: 4},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "lo1", tenant: "t", priority: 0, socs: 8, seq: 1}, preemptible: true, parking: true},
			},
			capacity: 8,
			quota:    noQuota,
			// hi's reservation consumes lo1's draining SoCs; lo2 must
			// not start on them and nothing else is parked.
			want: decision{},
		},
		{
			name: "preemption reclaims multiple victims when needed",
			pending: []schedJob{
				{id: "hi", tenant: "t", priority: 9, socs: 8, seq: 4},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "lo1", tenant: "t", priority: 1, socs: 4, seq: 1}, preemptible: true},
				{schedJob: schedJob{id: "lo2", tenant: "t", priority: 1, socs: 4, seq: 2}, preemptible: true},
			},
			capacity: 8,
			quota:    noQuota,
			want:     decision{Park: []string{"lo2", "lo1"}},
		},
		{
			name: "capacity cut parks the cheapest preemptible overflow",
			running: []schedRunning{
				{schedJob: schedJob{id: "old", tenant: "t", priority: 1, socs: 8, seq: 1}, preemptible: true},
				{schedJob: schedJob{id: "young", tenant: "t", priority: 0, socs: 8, seq: 2}, preemptible: true},
			},
			capacity: 10, // was >= 16 before the serving tide rose
			quota:    noQuota,
			want:     decision{Park: []string{"young"}},
		},
		{
			name: "deep cut parks several victims but never the non-preemptible",
			running: []schedRunning{
				{schedJob: schedJob{id: "serve", tenant: "web", priority: 9, socs: 8, seq: 1}},
				{schedJob: schedJob{id: "t1", tenant: "t", priority: 0, socs: 4, seq: 2}, preemptible: true},
				{schedJob: schedJob{id: "t2", tenant: "t", priority: 0, socs: 4, seq: 3}, preemptible: true},
			},
			capacity: 9,
			quota:    noQuota,
			want:     decision{Park: []string{"t2", "t1"}},
		},
		{
			name: "capacity already draining counts toward the cut",
			running: []schedRunning{
				{schedJob: schedJob{id: "p", tenant: "t", priority: 0, socs: 8, seq: 1}, preemptible: true, parking: true},
				{schedJob: schedJob{id: "r", tenant: "t", priority: 0, socs: 8, seq: 2}, preemptible: true},
			},
			capacity: 8, // the parking job's exit alone restores balance
			quota:    noQuota,
			want:     decision{},
		},
		{
			name: "over-capacity drain is not grantable as a reservation",
			pending: []schedJob{
				{id: "new", tenant: "t", priority: 0, socs: 4, seq: 3},
			},
			running: []schedRunning{
				{schedJob: schedJob{id: "p", tenant: "t", priority: 5, socs: 8, seq: 1}, preemptible: true, parking: true},
				{schedJob: schedJob{id: "r", tenant: "t", priority: 5, socs: 8, seq: 2}},
			},
			capacity: 8,
			quota:    noQuota,
			// p's 8 SoCs drain toward the cut, not toward new work: once
			// p exits the cluster is exactly full.
			want: decision{},
		},
		{
			name: "tidal window packs only what fits",
			pending: []schedJob{
				{id: "j1", tenant: "t", priority: 0, socs: 2, seq: 1},
				{id: "j2", tenant: "t", priority: 0, socs: 2, seq: 2},
				{id: "j3", tenant: "t", priority: 0, socs: 2, seq: 3},
			},
			capacity: 5, // e.g. peak-hour derated capacity
			quota:    noQuota,
			want:     decision{Start: []string{"j1", "j2"}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := planSchedule(c.pending, c.running, c.capacity, c.quota)
			if !reflect.DeepEqual(got.Start, c.want.Start) || !reflect.DeepEqual(got.Park, c.want.Park) {
				t.Fatalf("planSchedule = %+v, want %+v", got, c.want)
			}
		})
	}
}

// The tidal trace drives packing end to end: what does not fit at the
// daytime peak is admitted once the clock reaches the trough.
func TestPlanScheduleTidalPacking(t *testing.T) {
	trv := cluster.DefaultTidalTrace()
	tr := &trv
	total := 32
	pending := []schedJob{
		{id: "j1", tenant: "t", priority: 0, socs: 8, seq: 1},
		{id: "j2", tenant: "t", priority: 0, socs: 8, seq: 2},
		{id: "j3", tenant: "t", priority: 0, socs: 8, seq: 3},
	}
	atPeak := planSchedule(pending, nil, Capacity(total, tr, 14.5), noQuota)
	if len(atPeak.Start) != 0 {
		t.Fatalf("peak hour (capacity %d) should admit nothing: %+v",
			Capacity(total, tr, 14.5), atPeak)
	}
	atTrough := planSchedule(pending, nil, Capacity(total, tr, 2.5), noQuota)
	if len(atTrough.Start) != 3 {
		t.Fatalf("trough (capacity %d) should admit all three: %+v",
			Capacity(total, tr, 2.5), atTrough)
	}
}
