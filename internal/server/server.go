package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"socflow/internal/cluster"
)

// State is a job's position in the control-plane lifecycle.
type State string

const (
	// JobQueued: admitted, waiting for capacity or quota headroom.
	JobQueued State = "queued"
	// JobRunning: executing on its SoCs.
	JobRunning State = "running"
	// JobParking: told to preempt; still running until the next epoch
	// boundary, where it checkpoints and exits with ErrParked.
	JobParking State = "parking"
	// JobParked: checkpointed and off the cluster, waiting to resume.
	JobParked State = "parked"
	// JobDone: finished successfully; the result is available.
	JobDone State = "done"
	// JobFailed: finished with an error other than cancellation.
	JobFailed State = "failed"
	// JobCanceled: canceled by the submitter or by server shutdown.
	JobCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

var (
	// ErrParked is returned by a RunFunc that stopped at an epoch
	// boundary because the controller asked it to park. The server
	// re-queues the job instead of failing it.
	ErrParked = errors.New("server: job parked for preemption")
	// ErrClosed rejects submissions to a closed server.
	ErrClosed = errors.New("server: closed")
	// ErrQueueFull rejects submissions past the admission bound.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrQuotaExceeded rejects a job that can never satisfy its
	// tenant's quota.
	ErrQuotaExceeded = errors.New("server: tenant quota exceeded")
	// ErrUnknownJob is returned for job IDs the server has never seen.
	ErrUnknownJob = errors.New("server: unknown job")
)

// Config sizes the control plane.
type Config struct {
	// TotalSoCs is the cluster size the scheduler packs jobs into
	// (default 32).
	TotalSoCs int
	// QueueLimit bounds jobs waiting in the admission queue
	// (default 64). Running and parked jobs do not count against it.
	QueueLimit int
	// DefaultQuota applies to tenants absent from Quotas. The zero
	// value is unlimited.
	DefaultQuota Quota
	// Quotas maps tenant name to its quota.
	Quotas map[string]Quota
	// Tidal, when set, derates capacity by the trace's busy fraction
	// at the current Hour — training packs into idle windows.
	Tidal *cluster.TidalTrace
	// Hour is the initial simulated hour of day for Tidal.
	Hour float64
}

// RunFunc executes one job segment. It must watch ctl.ParkRequested at
// epoch boundaries and, when asked, checkpoint and return ErrParked;
// on resume it is called again with ctl.StartEpoch set to the first
// epoch still to run. It should honor ctx for cancellation.
type RunFunc func(ctx context.Context, ctl *Controller) (any, error)

// JobSpec describes a job to the scheduler. The server never inspects
// the work itself — Run is an opaque segment runner, which is what
// keeps this package free of the facade's model/dataset surface.
type JobSpec struct {
	Tenant      string
	Priority    int // higher runs first and may preempt lower
	SoCs        int // cluster slots the job occupies (default 1)
	Epochs      int // advisory; surfaced in Status
	Preemptible bool
	Run         RunFunc
	// OnTerminal, if set, runs once after the job reaches a terminal
	// state (outside the server lock). The facade uses it to release
	// per-job resources such as event streams and park directories.
	OnTerminal func()
}

// Controller is the per-segment channel between scheduler and job.
type Controller struct {
	park       atomic.Bool
	startEpoch int
	observe    func(epoch int)
	resize     func(socs int)
}

// ParkRequested reports whether the scheduler wants the job off the
// cluster at the next epoch boundary.
func (c *Controller) ParkRequested() bool { return c.park.Load() }

// StartEpoch is the first epoch this segment should run (0 for a fresh
// job, the parked epoch on resume).
func (c *Controller) StartEpoch() int { return c.startEpoch }

// ObserveEpoch records that the given epoch finished, so Status
// reports progress and a resume knows where to restart.
func (c *Controller) ObserveEpoch(epoch int) {
	if c.observe != nil {
		c.observe(epoch)
	}
}

// Resize asks the scheduler to change the job's SoC footprint and
// replan: the serving tenant widens with the request tide and narrows
// at night, parking preemptible training into the swell and releasing
// capacity back on the ebb. Clamped to [1, TotalSoCs]. The new
// footprint bypasses the submit-time quota gate — a grow can push the
// tenant past MaxSoCs until the next shrink — so give an elastic
// serving tenant an unlimited (zero) MaxSoCs quota. No-op outside a
// running segment.
func (c *Controller) Resize(socs int) {
	if c.resize != nil {
		c.resize(socs)
	}
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	State      State  `json:"state"`
	Priority   int    `json:"priority"`
	SoCs       int    `json:"socs"`
	Epochs     int    `json:"epochs,omitempty"`
	EpochsDone int    `json:"epochs_done"`
	Parks      int    `json:"parks"`
	Resumes    int    `json:"resumes"`
	Error      string `json:"error,omitempty"`
}

type job struct {
	id       string
	spec     JobSpec
	seq      uint64
	state    State
	epochs   int // epochsDone
	parks    int
	resumes  int
	err      error
	result   any
	done     chan struct{}
	cancel   context.CancelFunc // set while a segment is in flight
	ctl      *Controller
	canceled bool // submitter asked for cancellation
}

// Server is the control plane. One instance owns the simulated
// cluster's capacity; all jobs — library Submit calls and daemon HTTP
// submissions alike — flow through its scheduler.
type Server struct {
	cfg Config

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	seq    uint64
	hour   float64
	jobs   map[string]*job
	order  []string       // submission order, for List
	peak   map[string]int // tenant -> peak concurrent running jobs
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.TotalSoCs <= 0 {
		cfg.TotalSoCs = 32
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	return &Server{
		cfg:  cfg,
		hour: cfg.Hour,
		jobs: map[string]*job{},
		peak: map[string]int{},
	}
}

func (s *Server) quotaFor(tenant string) Quota {
	if q, ok := s.cfg.Quotas[tenant]; ok {
		return q
	}
	return s.cfg.DefaultQuota
}

// SetQuota installs or replaces one tenant's quota and reschedules.
func (s *Server) SetQuota(tenant string, q Quota) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Quotas == nil {
		s.cfg.Quotas = map[string]Quota{}
	}
	s.cfg.Quotas[tenant] = q
	s.rescheduleLocked()
}

// SetHour advances the simulated clock and reschedules: as the tidal
// trace's busy fraction falls, queued jobs pack into the freed window;
// as it rises, preemptible jobs past the shrunken capacity are parked
// at their next epoch boundary (non-preemptible jobs are never
// touched), and no new jobs start past it.
func (s *Server) SetHour(h float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hour = h
	s.rescheduleLocked()
}

// Hour returns the simulated hour of day.
func (s *Server) Hour() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hour
}

// Capacity returns the SoCs available to training right now.
func (s *Server) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Capacity(s.cfg.TotalSoCs, s.cfg.Tidal, s.hour)
}

// Submit admits a job. It returns the job ID immediately; scheduling
// is asynchronous.
func (s *Server) Submit(spec JobSpec) (string, error) {
	if spec.Run == nil {
		return "", fmt.Errorf("server: JobSpec.Run must be set")
	}
	if spec.SoCs <= 0 {
		spec.SoCs = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if spec.SoCs > s.cfg.TotalSoCs {
		return "", fmt.Errorf("server: job wants %d SoCs, cluster has %d: %w",
			spec.SoCs, s.cfg.TotalSoCs, ErrQuotaExceeded)
	}
	if q := s.quotaFor(spec.Tenant); q.MaxSoCs > 0 && spec.SoCs > q.MaxSoCs {
		return "", fmt.Errorf("server: job wants %d SoCs, tenant %q is capped at %d: %w",
			spec.SoCs, spec.Tenant, q.MaxSoCs, ErrQuotaExceeded)
	}
	queued := 0
	for _, j := range s.jobs {
		if j.state == JobQueued {
			queued++
		}
	}
	if queued >= s.cfg.QueueLimit {
		return "", ErrQueueFull
	}
	s.seq++
	j := &job{
		id:    fmt.Sprintf("job-%06d", s.seq),
		spec:  spec,
		seq:   s.seq,
		state: JobQueued,
		done:  make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.rescheduleLocked()
	return j.id, nil
}

// rescheduleLocked runs one scheduling round and acts on it. Callers
// hold s.mu.
func (s *Server) rescheduleLocked() {
	if s.closed {
		return
	}
	var pending []schedJob
	var running []schedRunning
	for _, j := range s.jobs {
		sj := schedJob{id: j.id, tenant: j.spec.Tenant, priority: j.spec.Priority, socs: j.spec.SoCs, seq: j.seq}
		switch j.state {
		case JobQueued, JobParked:
			pending = append(pending, sj)
		case JobRunning:
			running = append(running, schedRunning{schedJob: sj, preemptible: j.spec.Preemptible})
		case JobParking:
			running = append(running, schedRunning{schedJob: sj, preemptible: j.spec.Preemptible, parking: true})
		}
	}
	capacity := Capacity(s.cfg.TotalSoCs, s.cfg.Tidal, s.hour)
	d := planSchedule(pending, running, capacity, s.quotaFor)
	for _, id := range d.Park {
		j := s.jobs[id]
		if j == nil || j.state != JobRunning {
			continue
		}
		j.state = JobParking
		j.ctl.park.Store(true)
	}
	for _, id := range d.Start {
		j := s.jobs[id]
		if j == nil || (j.state != JobQueued && j.state != JobParked) {
			continue
		}
		s.startLocked(j)
	}
}

func (s *Server) startLocked(j *job) {
	if j.state == JobParked {
		j.resumes++
	}
	j.state = JobRunning
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	ctl := &Controller{startEpoch: j.epochs}
	ctl.observe = func(epoch int) {
		s.mu.Lock()
		if epoch+1 > j.epochs {
			j.epochs = epoch + 1
		}
		s.mu.Unlock()
	}
	ctl.resize = func(socs int) {
		if socs < 1 {
			socs = 1
		}
		if socs > s.cfg.TotalSoCs {
			socs = s.cfg.TotalSoCs
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		// Only the live segment may resize, and only while it holds SoCs.
		if j.ctl != ctl || (j.state != JobRunning && j.state != JobParking) || socs == j.spec.SoCs {
			return
		}
		j.spec.SoCs = socs
		s.rescheduleLocked()
	}
	j.ctl = ctl

	// Peak concurrent running jobs per tenant, for quota assertions.
	n := 0
	for _, other := range s.jobs {
		if other.spec.Tenant == j.spec.Tenant && (other.state == JobRunning || other.state == JobParking) {
			n++
		}
	}
	if n > s.peak[j.spec.Tenant] {
		s.peak[j.spec.Tenant] = n
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		result, err := j.spec.Run(ctx, ctl)
		cancel()
		s.finish(j, result, err)
	}()
}

// finish transitions a job after a segment returns.
func (s *Server) finish(j *job, result any, err error) {
	s.mu.Lock()
	j.cancel = nil
	switch {
	case j.canceled || (err != nil && errors.Is(err, context.Canceled)):
		j.state = JobCanceled
		if err == nil || errors.Is(err, ErrParked) {
			err = context.Canceled
		}
		j.err = err
	case err != nil && errors.Is(err, ErrParked):
		j.state = JobParked
		j.parks++
	case err != nil:
		j.state = JobFailed
		j.err = err
	default:
		j.state = JobDone
		j.result = result
	}
	terminal := j.state.Terminal()
	var onTerminal func()
	if terminal {
		close(j.done)
		onTerminal = j.spec.OnTerminal
	}
	s.rescheduleLocked()
	s.mu.Unlock()
	if onTerminal != nil {
		onTerminal()
	}
}

// Cancel stops a job. Queued and parked jobs cancel immediately;
// running jobs get their context canceled and transition once the
// segment returns. Canceling a terminal job is a no-op.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.state.Terminal() {
		s.mu.Unlock()
		return nil
	}
	j.canceled = true
	var onTerminal func()
	switch j.state {
	case JobQueued, JobParked:
		j.state = JobCanceled
		j.err = context.Canceled
		close(j.done)
		onTerminal = j.spec.OnTerminal
		s.rescheduleLocked()
	default: // running or parking: signal and let finish() transition
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	if onTerminal != nil {
		onTerminal()
	}
	return nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
// On completion it returns the job's result; for failed or canceled
// jobs it returns the job's error.
func (s *Server) Wait(ctx context.Context, id string) (any, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.result, j.err
}

// Result returns a terminal job's result without blocking.
func (s *Server) Result(id string) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if !j.state.Terminal() {
		return nil, fmt.Errorf("server: job %s is %s, not terminal", id, j.state)
	}
	return j.result, j.err
}

func (j *job) statusLocked() Status {
	st := Status{
		ID:         j.id,
		Tenant:     j.spec.Tenant,
		State:      j.state,
		Priority:   j.spec.Priority,
		SoCs:       j.spec.SoCs,
		Epochs:     j.spec.Epochs,
		EpochsDone: j.epochs,
		Parks:      j.parks,
		Resumes:    j.resumes,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Get returns one job's status snapshot.
func (s *Server) Get(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.statusLocked(), nil
}

// List returns every job's status in submission order.
func (s *Server) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].statusLocked())
	}
	return out
}

// PeakRunning reports the highest number of the tenant's jobs that
// were ever running concurrently — the observable a quota test
// asserts on.
func (s *Server) PeakRunning(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak[tenant]
}

// Close cancels every non-terminal job, rejects further submissions,
// and waits for in-flight segments to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var callbacks []func()
	for _, j := range s.jobs {
		if j.state.Terminal() {
			continue
		}
		j.canceled = true
		switch j.state {
		case JobQueued, JobParked:
			j.state = JobCanceled
			j.err = context.Canceled
			close(j.done)
			if j.spec.OnTerminal != nil {
				callbacks = append(callbacks, j.spec.OnTerminal)
			}
		default:
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	s.mu.Unlock()
	for _, cb := range callbacks {
		cb()
	}
	s.wg.Wait()
}

// Drain winds the control plane down without abandoning preemptible
// progress: further submissions are rejected, queued jobs and
// non-preemptible running jobs are canceled, and every running
// preemptible job is asked to park through the normal checkpoint path
// — exactly the request a tidal preemption makes — so its state
// survives for a future server generation. Drain waits until every
// in-flight segment has exited; if ctx expires first the stragglers
// are canceled like Close. It returns how many jobs ended parked.
func (s *Server) Drain(ctx context.Context) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return s.parkedCount()
	}
	s.closed = true
	var callbacks []func()
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			j.canceled = true
			j.state = JobCanceled
			j.err = context.Canceled
			close(j.done)
			if j.spec.OnTerminal != nil {
				callbacks = append(callbacks, j.spec.OnTerminal)
			}
		case JobRunning, JobParking:
			if j.spec.Preemptible {
				// The park request; the segment checkpoints at its
				// next epoch boundary and returns ErrParked.
				j.state = JobParking
				j.ctl.park.Store(true)
			} else {
				j.canceled = true
				if j.cancel != nil {
					j.cancel()
				}
			}
		}
		// JobParked and terminal jobs are left as they are: a parked
		// job's checkpoint is already safe on disk.
	}
	s.mu.Unlock()
	for _, cb := range callbacks {
		cb()
	}

	for !s.quiesced() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for _, j := range s.jobs {
				if (j.state == JobRunning || j.state == JobParking) && j.cancel != nil {
					j.canceled = true
					j.cancel()
				}
			}
			s.mu.Unlock()
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}
	s.wg.Wait()
	return s.parkedCount()
}

// quiesced reports whether no segment is still on the cluster.
func (s *Server) quiesced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.state == JobRunning || j.state == JobParking {
			return false
		}
	}
	return true
}

func (s *Server) parkedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.state == JobParked {
			n++
		}
	}
	return n
}
