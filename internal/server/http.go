package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// SubmitRequest is the wire form of a job submission. Config is
// decoded by the Factory the daemon was built with, so this package
// stays ignorant of the facade's Config/DistributedConfig types.
type SubmitRequest struct {
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Kind selects the job family: "train" (default) or "distributed".
	Kind   string          `json:"kind,omitempty"`
	Config json.RawMessage `json:"config"`
}

// SubmitResponse carries the assigned job ID.
type SubmitResponse struct {
	ID string `json:"id"`
}

// jobResponse is a status snapshot plus, for done jobs, the job's
// report marshaled as-is.
type jobResponse struct {
	Status
	Report json.RawMessage `json:"report,omitempty"`
}

// Factory turns a SubmitRequest into a runnable JobSpec. The facade
// injects one that builds training runners; tests inject stubs.
type Factory func(req SubmitRequest) (JobSpec, error)

// NewHandler exposes the server over local HTTP/JSON:
//
//	GET    /healthz          liveness
//	POST   /v1/jobs          submit (SubmitRequest -> SubmitResponse)
//	GET    /v1/jobs          list statuses
//	GET    /v1/jobs/{id}     one status (+ report once done)
//	DELETE /v1/jobs/{id}     cancel
func NewHandler(s *Server, f Factory) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		spec, err := f(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), submitStatus(err))
			return
		}
		writeJSON(w, SubmitResponse{ID: id})
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.List())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, err := s.Get(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		resp := jobResponse{Status: st}
		if st.State == JobDone {
			if result, err := s.Result(id); err == nil && result != nil {
				if raw, err := json.Marshal(result); err == nil {
					resp.Report = raw
				}
			}
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	return mux
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusForbidden
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
