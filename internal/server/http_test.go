package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// echoFactory builds instant jobs whose result echoes the request, so
// HTTP plumbing can be tested without any training.
func echoFactory(req SubmitRequest) (JobSpec, error) {
	if req.Kind != "" && req.Kind != "train" {
		return JobSpec{}, fmt.Errorf("unknown kind %q", req.Kind)
	}
	tenant := req.Tenant
	return JobSpec{
		Tenant: tenant,
		SoCs:   1,
		Run: func(ctx context.Context, ctl *Controller) (any, error) {
			return map[string]string{"tenant": tenant}, nil
		},
	}, nil
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(Config{TotalSoCs: 4, Quotas: map[string]Quota{"tiny": {MaxSoCs: 0, MaxRunningJobs: 0}}})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, echoFactory))
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"tenant":"a","kind":"train","config":{}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response: %+v %v", sub, err)
	}
	if _, err := s.Wait(context.Background(), sub.ID); err != nil {
		t.Fatal(err)
	}

	// Status with report once done.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("get job: %v %v", resp, err)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.State != JobDone || jr.Tenant != "a" {
		t.Fatalf("job response: %+v", jr)
	}
	var report map[string]string
	if err := json.Unmarshal(jr.Report, &report); err != nil || report["tenant"] != "a" {
		t.Fatalf("report payload: %s (%v)", jr.Report, err)
	}

	// List includes the job.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("list: %v %v", resp, err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil || len(list) != 1 {
		t.Fatalf("list payload: %+v %v", list, err)
	}

	// Error mapping.
	if resp := post(`{"kind":"serve","config":{}}`); resp.StatusCode != 400 {
		t.Fatalf("bad kind status %d", resp.StatusCode)
	}
	if resp := post(`not json`); resp.StatusCode != 400 {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/job-999999"); resp.StatusCode != 404 {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}

	// Cancel (of a terminal job: no-op, still 204).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel: %v %v", resp, err)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != 404 {
		t.Fatalf("cancel unknown status %d", resp.StatusCode)
	}
}

func TestHTTPQuotaStatus(t *testing.T) {
	s := New(Config{TotalSoCs: 4, Quotas: map[string]Quota{"capped": {MaxSoCs: 1}}})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, func(req SubmitRequest) (JobSpec, error) {
		return JobSpec{
			Tenant: req.Tenant,
			SoCs:   2,
			Run:    func(ctx context.Context, ctl *Controller) (any, error) { return nil, nil },
		}, nil
	}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewBufferString(`{"tenant":"capped","config":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("quota violation status %d, want 403", resp.StatusCode)
	}
}
