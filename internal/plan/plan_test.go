package plan

import (
	"reflect"
	"testing"

	"socflow/internal/cluster"
	"socflow/internal/nn"
)

func searchOpts(model string, socs, maxGroups, batch int) Options {
	return Options{
		Spec:        nn.MustSpec(model),
		NumSoCs:     socs,
		MaxGroups:   maxGroups,
		GlobalBatch: batch,
		Samples:     50_000,
	}
}

// The planner is a pure function of its options: equal inputs must
// return the identical plan, bit for bit. The runtime executes what
// the planner returns, so instability here would break the pipeline
// track's reproducibility guarantee. This test gates tier-1.
func TestSearchDeterministic(t *testing.T) {
	first, err := Search(searchOpts("resnet34", 16, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Search(searchOpts("resnet34", 16, 2, 8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("search unstable:\n  first %+v\n  again %+v", first, again)
		}
	}
}

// A deep model on a sync-bound configuration — 8-SoC groups whose ring
// spans PCBs moving an 85 MB payload, with a small batch that floors
// per-SoC shares at one sample — is where pipelining pays: gradients
// never cross the wire per iteration. The planner must find that.
func TestSearchPicksPipelineWhenSyncBound(t *testing.T) {
	p, err := Search(searchOpts("resnet34", 8, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModePipeline {
		t.Fatalf("planner chose %v for the sync-bound deep model, want pipeline (epoch %.1fs vs data %.1fs)",
			p.Mode, p.EpochSeconds, p.DataEpochSeconds)
	}
	if p.EpochSeconds >= p.DataEpochSeconds {
		t.Fatalf("chosen plan (%.1fs) does not beat the best data-parallel candidate (%.1fs)",
			p.EpochSeconds, p.DataEpochSeconds)
	}
	if mb := p.Batch / p.MicroBatches; mb < 2 {
		t.Fatalf("micro-batch size %d violates the batch-norm floor", mb)
	}
}

// A tiny model with a sub-megabyte gradient payload is compute-bound:
// data parallelism splits the compute with near-zero sync cost, while
// a pipeline pays per-micro-batch dispatch overhead on every stage.
// The planner must not pipeline it.
func TestSearchPicksDataForSmallModel(t *testing.T) {
	p, err := Search(searchOpts("lenet5", 4, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeData {
		t.Fatalf("planner chose %v for lenet5, want data (epoch %.2fs vs data %.2fs)",
			p.Mode, p.EpochSeconds, p.DataEpochSeconds)
	}
}

func TestSearchRespectsMaxGroups(t *testing.T) {
	p, err := Search(searchOpts("resnet18", 32, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if p.Groups() > 4 {
		t.Fatalf("plan uses %d groups, cap was 4", p.Groups())
	}
	// Every SoC appears exactly once across the placement.
	seen := map[int]int{}
	for _, members := range p.Placement {
		for _, soc := range members {
			seen[soc]++
		}
	}
	if len(seen) != 32 {
		t.Fatalf("placement covers %d of 32 SoCs", len(seen))
	}
	for soc, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("SoC %d placed %d times", soc, cnt)
		}
	}
}

// The plan the search hands back must re-price to exactly the epoch
// time the search recorded — prediction and execution share one
// pricer, and this is the contract that keeps them identical.
func TestChosenPlanRepricesIdentically(t *testing.T) {
	o := searchOpts("resnet34", 8, 1, 8)
	p, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	clu := cluster.New(cluster.Config{NumSoCs: 8})
	got := p.EpochSecondsOn(clu, o.Spec, o.Samples)
	if got != p.EpochSeconds {
		t.Fatalf("re-priced epoch %.6fs != searched %.6fs", got, p.EpochSeconds)
	}
}

func TestSearchValidatesOptions(t *testing.T) {
	cases := []Options{
		{},                                       // no spec
		{Spec: nn.MustSpec("lenet5")},            // no SoCs
		{Spec: nn.MustSpec("lenet5"), NumSoCs: 4, GlobalBatch: 0, Samples: 100}, // no batch
		{Spec: nn.MustSpec("lenet5"), NumSoCs: 4, GlobalBatch: 8},               // no samples
	}
	for i, o := range cases {
		if _, err := Search(o); err == nil {
			t.Fatalf("case %d: bad options accepted", i)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good, err := Search(searchOpts("resnet34", 8, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.MicroBatches = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero micro-batches accepted")
	}
	bad = *good
	bad.Placement = [][]int{{0, 0, 1, 2, 3, 4, 5, 6}}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate SoC accepted")
	}
	bad = *good
	bad.Mode = ModeData
	if err := bad.Validate(); err == nil {
		t.Fatal("data mode with stages accepted")
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err == nil {
		t.Fatal("nil plan accepted")
	}
}

// The search's simulator-backed boundary pricing must charge more for
// stage boundaries that cross PCBs: a strided pipeline placement can
// never beat the contiguous one on epoch time.
func TestContiguousPipelineNoWorseThanStrided(t *testing.T) {
	spec := nn.MustSpec("resnet34")
	clu := cluster.New(cluster.Config{NumSoCs: 16})
	pr := NewPricer(clu, spec)
	base, err := Search(Options{Spec: spec, Cluster: clu, MaxGroups: 2, GlobalBatch: 8, Samples: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if base.Mode != ModePipeline {
		t.Skipf("planner chose %v; strided comparison needs a pipeline plan", base.Mode)
	}
	allNodes := make([]int, 16)
	for i := range allNodes {
		allNodes[i] = i
	}
	strided := *base
	strided.Placement = stridedPlacement(allNodes, base.Groups())
	if pr.EpochSeconds(base, 50_000) > pr.EpochSeconds(&strided, 50_000) {
		t.Fatalf("contiguous pipeline (%.1fs) priced worse than strided (%.1fs)",
			pr.EpochSeconds(base, 50_000), pr.EpochSeconds(&strided, 50_000))
	}
}
