package plan

import (
	"fmt"
	"math"
	"sort"

	"socflow/internal/cluster"
	"socflow/internal/nn"
	"socflow/internal/serve"
	"socflow/internal/tensor"
)

// Options parameterizes a planner search.
type Options struct {
	// Spec is the paper-scale model card the candidates are priced
	// against. Required.
	Spec *nn.Spec
	// Model is the micro model used for the layer-cost shape walk. When
	// nil, one is built from Spec with a fixed seed and the default
	// micro input (the walk only needs layer ratios, not weights).
	Model *nn.Sequential
	// InC and ImgSize are the micro input shape for the cost walk
	// (defaults 3 and 8 — the CIFAR micro profile).
	InC, ImgSize int
	// Cluster is the target topology; built from NumSoCs with defaults
	// when nil.
	Cluster *cluster.Cluster
	// NumSoCs is the cluster size. Required when Cluster is nil.
	NumSoCs int
	// Nodes restricts the search to a subset of the cluster's SoCs —
	// the surviving fleet after a crash or tidal reclaim. Placements
	// only use these IDs; the returned Plan still carries the full
	// NumSoCs so it remains executable on the original mesh. Nil means
	// all of [0, NumSoCs). IDs must be unique and in range; order is
	// normalized (sorted ascending) so equal sets search identically.
	Nodes []int
	// MaxGroups caps the data-parallel group count — the statistical-
	// efficiency (convergence) budget the caller is willing to spend on
	// more groups, in the spirit of core.SelectGroupCount. 0 means no
	// cap.
	MaxGroups int
	// GlobalBatch is the per-group mini-batch at paper scale. Required.
	GlobalBatch int
	// Samples is the paper-scale samples per epoch. Required.
	Samples int
	// ActivationScale overrides the micro→paper activation scaling
	// (default DefaultActivationScale).
	ActivationScale float64
	// MinMicroBatch floors the GPipe micro-batch size (default 2:
	// batch-norm layers degenerate on single-sample micro-batches — a
	// one-sample batch normalizes every activation to its shift β).
	MinMicroBatch int
	// Only restricts which modes may win: "" considers both, ModeData
	// or ModePipeline forces that mode. Data candidates are still
	// priced under ModePipeline so DataEpochSeconds keeps reporting the
	// baseline the pipeline is beating.
	Only Mode
}

func (o Options) withDefaults() Options {
	if o.InC == 0 {
		o.InC = 3
	}
	if o.ImgSize == 0 {
		o.ImgSize = 8
	}
	if o.Cluster != nil && o.NumSoCs == 0 {
		o.NumSoCs = o.Cluster.Config.NumSoCs
	}
	if o.ActivationScale <= 0 {
		o.ActivationScale = DefaultActivationScale
	}
	if o.MinMicroBatch <= 0 {
		o.MinMicroBatch = 2
	}
	return o
}

// Search enumerates the parallelization space and returns the plan
// with the smallest predicted epoch makespan. The space is the cross
// product of
//
//   - group count n: every divisor of NumSoCs within MaxGroups, so
//     groups are symmetric;
//   - placement: contiguous (integrity-greedy-style, groups packed
//     onto consecutive SoCs and therefore minimal PCB crossings) and
//     strided (round-robin across PCBs) — the two extremes the Fig. 13
//     mapping ablation compares;
//   - within-group mode: data-parallel SSGD, or a pipeline of depth
//     min(k, L) with GPipe micro-batch counts M dividing the batch
//     subject to the MinMicroBatch floor.
//
// Enumeration order is fixed and improvement is strict, so equal
// inputs always return the identical plan (the determinism test gates
// tier-1 on this).
func Search(o Options) (*Plan, error) {
	o = o.withDefaults()
	if o.Spec == nil {
		return nil, fmt.Errorf("plan: Options.Spec is required")
	}
	if o.NumSoCs < 1 {
		return nil, fmt.Errorf("plan: NumSoCs %d, want >= 1 (or pass a Cluster)", o.NumSoCs)
	}
	if o.GlobalBatch < 1 {
		return nil, fmt.Errorf("plan: GlobalBatch %d, want >= 1", o.GlobalBatch)
	}
	if o.Samples < 1 {
		return nil, fmt.Errorf("plan: Samples %d, want >= 1", o.Samples)
	}
	if o.Only != "" && o.Only != ModeData && o.Only != ModePipeline {
		return nil, fmt.Errorf("plan: Only %q, want %q or %q", o.Only, ModeData, ModePipeline)
	}
	nodes, err := normalizeNodes(o.Nodes, o.NumSoCs)
	if err != nil {
		return nil, err
	}
	clu := o.Cluster
	if clu == nil {
		clu = cluster.New(cluster.Config{NumSoCs: o.NumSoCs})
	}
	model := o.Model
	if model == nil {
		// Weights are irrelevant to the shape walk; the seed is fixed so
		// the builder's RNG draws never perturb anything.
		model = o.Spec.BuildMicro(tensor.NewRNG(1), o.InC, o.ImgSize, 10)
	}
	costs := serve.LayerCosts(model, o.InC, o.ImgSize)

	pr := NewPricer(clu, o.Spec)
	pr.ActScale = o.ActivationScale
	m := len(nodes)

	var (
		best      *Plan
		bestT     = math.Inf(1)
		bestDataT = math.Inf(1)
		cands     int
	)
	consider := func(p *Plan) {
		t := pr.EpochSeconds(p, o.Samples)
		cands++
		if p.Mode == ModeData && t < bestDataT {
			bestDataT = t
		}
		if o.Only != "" && p.Mode != o.Only {
			return
		}
		if t < bestT {
			bestT = t
			p.EpochSeconds = t
			best = p
		}
	}

	for n := 1; n <= m; n++ {
		if m%n != 0 {
			continue
		}
		if o.MaxGroups > 0 && n > o.MaxGroups {
			continue
		}
		k := m / n
		placements := [][][]int{contiguousPlacement(nodes, n)}
		if n > 1 && k > 1 {
			placements = append(placements, stridedPlacement(nodes, n))
		}
		for _, placement := range placements {
			consider(&Plan{
				NumSoCs:   o.NumSoCs,
				Mode:      ModeData,
				Placement: placement,
				Batch:     o.GlobalBatch,
			})
			if k < 2 || len(costs) < 2 || o.Only == ModeData {
				continue
			}
			d := k
			if d > len(costs) {
				d = len(costs)
			}
			stages, err := serve.PartitionBy(costs, d, serve.TrainingWeight)
			if err != nil {
				return nil, err
			}
			for mcount := 1; mcount <= o.GlobalBatch; mcount++ {
				if o.GlobalBatch%mcount != 0 {
					continue
				}
				if o.GlobalBatch/mcount < o.MinMicroBatch {
					break
				}
				consider(&Plan{
					NumSoCs:      o.NumSoCs,
					Mode:         ModePipeline,
					Placement:    placement,
					Stages:       stages,
					MicroBatches: mcount,
					Batch:        o.GlobalBatch,
				})
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("plan: no feasible candidate for %d SoCs", m)
	}
	best.DataEpochSeconds = bestDataT
	best.Candidates = cands
	return best, nil
}

// normalizeNodes validates a Nodes subset against the cluster size and
// returns it sorted ascending (a copy — the caller's slice is never
// mutated). Nil means the whole cluster.
func normalizeNodes(in []int, numSoCs int) ([]int, error) {
	if in == nil {
		nodes := make([]int, numSoCs)
		for i := range nodes {
			nodes[i] = i
		}
		return nodes, nil
	}
	if len(in) == 0 {
		return nil, fmt.Errorf("plan: Nodes is empty (nil means all %d SoCs)", numSoCs)
	}
	nodes := append([]int(nil), in...)
	sort.Ints(nodes)
	for i, soc := range nodes {
		if soc < 0 || soc >= numSoCs {
			return nil, fmt.Errorf("plan: Nodes contains SoC %d outside the %d-SoC cluster", soc, numSoCs)
		}
		if i > 0 && nodes[i-1] == soc {
			return nil, fmt.Errorf("plan: Nodes lists SoC %d twice", soc)
		}
	}
	return nodes, nil
}

// PricerFor builds the exact Pricer Search would use for these
// Options — same cluster fallback, same activation scale — so a
// re-pricing of an executed plan (the PR 9 predicted==executed
// invariant) and the search share one formula.
func PricerFor(o Options) *Pricer {
	o = o.withDefaults()
	clu := o.Cluster
	if clu == nil {
		clu = cluster.New(cluster.Config{NumSoCs: o.NumSoCs})
	}
	pr := NewPricer(clu, o.Spec)
	pr.ActScale = o.ActivationScale
	return pr
}

// contiguousPlacement packs group g onto the sorted node set's slots
// [g·k, (g+1)·k) — the integrity-greedy shape: minimal PCB crossings
// per group.
func contiguousPlacement(nodes []int, n int) [][]int {
	k := len(nodes) / n
	placement := make([][]int, n)
	for g := 0; g < n; g++ {
		members := make([]int, k)
		for i := range members {
			members[i] = nodes[g*k+i]
		}
		placement[g] = members
	}
	return placement
}

// stridedPlacement round-robins the node set across groups: member i
// of group g is the (g + i·n)-th surviving SoC, so every group spans
// as many PCBs as possible.
func stridedPlacement(nodes []int, n int) [][]int {
	k := len(nodes) / n
	placement := make([][]int, n)
	for g := 0; g < n; g++ {
		members := make([]int, k)
		for i := range members {
			members[i] = nodes[g+i*n]
		}
		placement[g] = members
	}
	return placement
}
