package plan

import (
	"reflect"
	"testing"

	"socflow/internal/nn"
	"socflow/internal/serve"
	"socflow/internal/tensor"
)

// Validate must reject every malformed placement shape a re-plan or a
// hand-written WithPlan could produce: cross-group overlaps, IDs off
// the cluster, ragged groups, and pipeline depths the group cannot
// host.
func TestPlanValidateEdgeCases(t *testing.T) {
	good, err := Search(searchOpts("resnet34", 8, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if good.Mode != ModePipeline {
		t.Fatalf("fixture plan is %v, want pipeline", good.Mode)
	}

	check := func(name string, mutate func(p *Plan)) {
		t.Helper()
		bad := *good
		bad.Placement = append([][]int(nil), good.Placement...)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}

	check("overlap across groups", func(p *Plan) {
		p.Placement = [][]int{{0, 1, 2, 3}, {3, 4, 5, 6}}
		p.Stages = p.Stages[:2]
	})
	check("SoC beyond cluster", func(p *Plan) {
		p.Placement = [][]int{{0, 1, 2, 3, 4, 5, 6, 8}}
	})
	check("negative SoC", func(p *Plan) {
		p.Placement = [][]int{{-1, 1, 2, 3, 4, 5, 6, 7}}
	})
	check("ragged groups", func(p *Plan) {
		p.Placement = [][]int{{0, 1, 2, 3}, {4, 5, 6}}
	})
	check("depth exceeds group size", func(p *Plan) {
		p.Placement = [][]int{{0, 1}, {2, 3}}
		// Stages stay at the searched depth (> 2).
	})
	check("single-stage pipeline", func(p *Plan) {
		p.Stages = p.Stages[:1]
	})
	check("micro-batches exceed batch", func(p *Plan) {
		p.MicroBatches = p.Batch + 1
	})
	check("unknown mode", func(p *Plan) {
		p.Mode = Mode("tensor")
	})
	check("empty placement", func(p *Plan) {
		p.Placement = nil
	})
}

// The search must clamp pipeline depth to the model's layer count: a
// shallow model on a wide group cannot yield more stages than layers.
func TestSearchDepthClampedToModelLayers(t *testing.T) {
	spec := nn.MustSpec("lenet5")
	layers := len(serve.LayerCosts(spec.BuildMicro(tensor.NewRNG(1), 3, 8, 10), 3, 8))
	o := searchOpts("lenet5", 32, 1, 64)
	o.Only = ModePipeline
	p, err := Search(o)
	if err != nil {
		t.Fatalf("no pipeline candidate for lenet5 on 32 SoCs: %v", err)
	}
	if p.Depth() > layers {
		t.Fatalf("depth %d exceeds the model's %d layers", p.Depth(), layers)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// A one-SoC fleet has no 2-member groups, so forcing pipeline mode
// must fail loudly rather than return an unexecutable plan.
func TestSearchPipelineInfeasibleOnTinyFleet(t *testing.T) {
	o := searchOpts("resnet34", 1, 0, 8)
	o.Only = ModePipeline
	if _, err := Search(o); err == nil {
		t.Fatal("pipeline plan returned for a 1-SoC fleet")
	}
}

// MinMicroBatch above the batch leaves no admissible micro-batch
// count; the pipeline candidates disappear and forcing the mode fails.
func TestSearchMicroBatchFloorExcludesPipeline(t *testing.T) {
	o := searchOpts("resnet34", 8, 1, 8)
	o.Only = ModePipeline
	o.MinMicroBatch = 16
	if _, err := Search(o); err == nil {
		t.Fatal("pipeline plan returned with an unsatisfiable micro-batch floor")
	}
}

func TestSearchNodesSubset(t *testing.T) {
	o := searchOpts("resnet34", 8, 1, 8)
	o.Nodes = []int{0, 1, 2, 4, 5, 7}
	p, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumSoCs != 8 {
		t.Fatalf("subset plan carries NumSoCs %d, want the full cluster 8", p.NumSoCs)
	}
	allowed := map[int]bool{0: true, 1: true, 2: true, 4: true, 5: true, 7: true}
	placed := 0
	for _, members := range p.Placement {
		for _, soc := range members {
			if !allowed[soc] {
				t.Fatalf("plan places SoC %d, not in the surviving set", soc)
			}
			placed++
		}
	}
	if placed != 6 {
		t.Fatalf("plan places %d SoCs, want all 6 survivors", placed)
	}
}

// Node order must not matter: the subset is a set, and the search
// normalizes it so re-plans triggered from different death orders
// converge on the identical plan.
func TestSearchNodesOrderIndependent(t *testing.T) {
	a := searchOpts("resnet34", 8, 1, 8)
	a.Nodes = []int{7, 2, 0, 5, 1, 4}
	b := searchOpts("resnet34", 8, 1, 8)
	b.Nodes = []int{0, 1, 2, 4, 5, 7}
	pa, err := Search(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Search(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("node order changed the plan:\n  %+v\n  %+v", pa, pb)
	}
}

func TestSearchNodesRejectsBadSubsets(t *testing.T) {
	for name, nodes := range map[string][]int{
		"empty":        {},
		"out of range": {0, 1, 8},
		"negative":     {-1, 0, 1},
		"duplicate":    {0, 1, 1, 2},
	} {
		o := searchOpts("resnet34", 8, 1, 8)
		o.Nodes = nodes
		if _, err := Search(o); err == nil {
			t.Fatalf("%s node set accepted", name)
		}
	}
}

// PricerFor must reproduce the search's own pricing exactly — the
// replan decision and the predicted==executed invariant both hang off
// this equality.
func TestPricerForMatchesSearch(t *testing.T) {
	o := searchOpts("resnet34", 8, 1, 8)
	p, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := PricerFor(o).EpochSeconds(p, o.Samples); got != p.EpochSeconds {
		t.Fatalf("PricerFor re-priced %.9fs, search recorded %.9fs", got, p.EpochSeconds)
	}
	sub := o
	sub.Nodes = []int{0, 1, 2, 4, 5, 7}
	ps, err := Search(sub)
	if err != nil {
		t.Fatal(err)
	}
	if got := PricerFor(sub).EpochSeconds(ps, sub.Samples); got != ps.EpochSeconds {
		t.Fatalf("subset plan re-priced %.9fs, search recorded %.9fs", got, ps.EpochSeconds)
	}
}
