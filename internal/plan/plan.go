// Package plan is the auto-parallelization planner: it searches the
// combined split space — data-parallel group count × pipeline depth ×
// micro-batch count × stage placement onto PCBs — and prices every
// candidate on the same calibrated models the runtime executes against
// (cluster.StepTime for compute, internal/simnet for activation
// transfers, internal/collective for gradient rings). The returned
// Plan is executed verbatim by the runtime: core's Pipeline strategy
// prices its epochs with the same Pricer the search used, so the
// planner's prediction and the executed timeline are one formula.
//
// The search generalizes the serving plane's partitioner to training:
// stages are balanced under serve.TrainingWeight (3× forward FLOPs +
// parameter residency) instead of the forward-only serving weight, and
// stage boundaries carry traffic both ways (forward activations and
// backward input-gradients).
//
// Everything is deterministic: fixed enumeration order, strict `<`
// improvement, and the seeded micro model used only for the layer-cost
// shape walk. Same Options, same Plan — always.
package plan

import (
	"fmt"
	"math"

	"socflow/internal/cluster"
	"socflow/internal/collective"
	"socflow/internal/nn"
	"socflow/internal/serve"
	"socflow/internal/simnet"
)

// Mode is the within-group parallelization a plan chose.
type Mode string

// Within-group modes.
const (
	// ModeData replicates the model on every group member and runs
	// synchronous SGD with per-iteration ring all-reduce (the SoCFlow
	// default).
	ModeData Mode = "data"
	// ModePipeline splits the model's layers across the group's members
	// and streams GPipe-style micro-batches through the stages;
	// gradients for each stage stay on its SoC, so per-iteration
	// synchronization disappears entirely (cross-group averaging happens
	// once per epoch, delayed-aggregation style).
	ModePipeline Mode = "pipeline"
)

// DefaultActivationScale maps micro activation volumes to paper scale —
// the (32/8)² area ratio between paper and micro inputs. Mirrors the
// serving engine's default.
const DefaultActivationScale = 16

// overlapFraction is the layer-wise gradient/compute overlap the
// executed SyncSGD schedule hides communication behind (§4.1
// optimization 1). It mirrors internal/core's constant of the same
// name; core imports this package, so the value is duplicated here and
// must stay in lockstep with core/engine.go.
const overlapFraction = 0.75

// updateSeconds mirrors core's updateTimePerStep (core/engine.go):
// the optimizer touches each parameter ~3 times (grad read, velocity
// update, weight write) at LPDDR5-bound effective throughput.
func updateSeconds(spec *nn.Spec) float64 { return float64(spec.Params) * 12 / 20e9 }

// Plan is one point in the parallelization space, priced and ready to
// execute.
type Plan struct {
	// NumSoCs is the cluster size the plan was searched for.
	NumSoCs int
	// Mode is the within-group parallelization.
	Mode Mode
	// Placement[g] lists group g's member SoC IDs. In pipeline mode,
	// member i of each group runs stage i; members beyond the pipeline
	// depth idle (the search only keeps such plans when they still win).
	Placement [][]int
	// Stages is the balanced layer partition (pipeline mode only).
	Stages []serve.Stage
	// MicroBatches is GPipe's M: how many micro-batches each mini-batch
	// is split into (pipeline mode only).
	MicroBatches int
	// Batch is the per-group mini-batch the plan was priced at.
	Batch int

	// EpochSeconds is the predicted epoch makespan of this plan.
	EpochSeconds float64
	// DataEpochSeconds is the best pure data-parallel candidate's
	// predicted epoch makespan — the planner's own baseline, reported so
	// callers can see the margin the chosen plan wins by.
	DataEpochSeconds float64
	// Candidates is how many plans the search priced.
	Candidates int
}

// Groups returns the data-parallel group count.
func (p *Plan) Groups() int { return len(p.Placement) }

// Depth returns the pipeline depth (1 for data-parallel plans).
func (p *Plan) Depth() int {
	if p.Mode == ModePipeline {
		return len(p.Stages)
	}
	return 1
}

// String renders the plan compactly for reports, e.g.
// "pipeline n=4 d=8 M=4 b=8" or "data n=8 k=4 b=64".
func (p *Plan) String() string {
	if p == nil {
		return "<nil plan>"
	}
	if p.Mode == ModePipeline {
		return fmt.Sprintf("pipeline n=%d d=%d M=%d b=%d", p.Groups(), p.Depth(), p.MicroBatches, p.Batch)
	}
	k := 0
	if len(p.Placement) > 0 {
		k = len(p.Placement[0])
	}
	return fmt.Sprintf("data n=%d k=%d b=%d", p.Groups(), k, p.Batch)
}

// Validate checks the plan is internally consistent and executable on
// a NumSoCs-wide cluster.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("plan: nil plan")
	}
	if len(p.Placement) == 0 {
		return fmt.Errorf("plan: empty placement")
	}
	if p.Batch < 1 {
		return fmt.Errorf("plan: batch %d, want >= 1", p.Batch)
	}
	seen := make(map[int]bool)
	k := len(p.Placement[0])
	for g, members := range p.Placement {
		if len(members) != k {
			return fmt.Errorf("plan: group %d has %d members, group 0 has %d", g, len(members), k)
		}
		for _, soc := range members {
			if soc < 0 || (p.NumSoCs > 0 && soc >= p.NumSoCs) {
				return fmt.Errorf("plan: group %d places SoC %d outside the %d-SoC cluster", g, soc, p.NumSoCs)
			}
			if seen[soc] {
				return fmt.Errorf("plan: SoC %d placed twice", soc)
			}
			seen[soc] = true
		}
	}
	switch p.Mode {
	case ModeData:
		if len(p.Stages) != 0 {
			return fmt.Errorf("plan: data mode with %d pipeline stages", len(p.Stages))
		}
	case ModePipeline:
		d := len(p.Stages)
		if d < 2 {
			return fmt.Errorf("plan: pipeline mode needs >= 2 stages, have %d", d)
		}
		if d > k {
			return fmt.Errorf("plan: %d stages for %d-member groups", d, k)
		}
		if p.MicroBatches < 1 {
			return fmt.Errorf("plan: pipeline mode needs MicroBatches >= 1, have %d", p.MicroBatches)
		}
		if p.MicroBatches > p.Batch {
			return fmt.Errorf("plan: %d micro-batches for batch %d", p.MicroBatches, p.Batch)
		}
	default:
		return fmt.Errorf("plan: unknown mode %q", p.Mode)
	}
	return nil
}

// IterationsPerEpoch returns how many iterations one epoch runs at
// paper scale: the groups share the sample budget, exactly as the
// executed SoCFlow timeline counts (Eq. 1 numerator).
func (p *Plan) IterationsPerEpoch(samples int) int {
	iters := samples / (len(p.Placement) * p.Batch)
	if iters < 1 {
		iters = 1
	}
	return iters
}

// EpochSecondsOn prices the plan's epoch makespan on the given cluster
// and model with a fresh Pricer. Hot loops (the search, the executing
// strategy) hold one Pricer instead.
func (p *Plan) EpochSecondsOn(clu *cluster.Cluster, spec *nn.Spec, samples int) float64 {
	return NewPricer(clu, spec).EpochSeconds(p, samples)
}

// Timing is the priced steady-state schedule of one pipeline group.
type Timing struct {
	// StageSeconds[i] is stage i's compute time for one micro-batch.
	StageSeconds []float64
	// XferSeconds[i] is the boundary i→i+1 activation/gradient transfer
	// time for one micro-batch (forward activations one way, backward
	// input-gradients the other, priced as concurrent simnet flows).
	XferSeconds []float64
	// Bottleneck is the slowest slot (stage compute + its outgoing
	// transfer) — the pipeline's initiation interval.
	Bottleneck float64
	// UpdateSeconds is the per-iteration optimizer cost: stages update
	// their own parameters in parallel, so the largest stage's share.
	UpdateSeconds float64
	// IterSeconds is one mini-batch through the pipeline at steady
	// state: (M + d - 1) bottleneck slots plus the update.
	IterSeconds float64
}

// Pricer prices plans for one cluster + model pair. It owns a reusable
// simnet Simulator and flow scratch so the search hot loop — thousands
// of boundary transfers across candidates — re-simulates without
// rebuilding simulator state. Not safe for concurrent use.
type Pricer struct {
	Clu  *cluster.Cluster
	Spec *nn.Spec
	// ActScale maps micro activation elements to paper-scale bytes
	// (default DefaultActivationScale).
	ActScale float64

	sim      *simnet.Simulator
	fwd, bwd simnet.Flow
	flows    [2]*simnet.Flow
	members  []int // cross-group ring scratch
}

// NewPricer builds a pricer around a reusable simulator.
func NewPricer(clu *cluster.Cluster, spec *nn.Spec) *Pricer {
	pr := &Pricer{Clu: clu, Spec: spec, ActScale: DefaultActivationScale, sim: simnet.NewSimulator()}
	pr.flows = [2]*simnet.Flow{&pr.fwd, &pr.bwd}
	return pr
}

// EpochSeconds prices one epoch of the plan at paper scale.
func (pr *Pricer) EpochSeconds(p *Plan, samples int) float64 {
	iters := p.IterationsPerEpoch(samples)
	if p.Mode == ModePipeline {
		worst := 0.0
		for g := range p.Placement {
			if t := pr.GroupTiming(p, g).IterSeconds; t > worst {
				worst = t
			}
		}
		return float64(iters)*worst + pr.CrossGroupSyncSeconds(p)
	}
	return pr.dataEpochSeconds(p, iters)
}

// GroupTiming prices group g's pipeline steady state. Stage compute is
// the stage's TrainingWeight share of the full training step on its
// SoC (the per-batch dispatch overhead is paid once per stage per
// micro-batch — splitting a model does not split the runtime's launch
// cost, which is exactly what makes over-deep pipelines lose).
func (pr *Pricer) GroupTiming(p *Plan, g int) Timing {
	d := len(p.Stages)
	mb := p.Batch / p.MicroBatches
	if mb < 1 {
		mb = 1
	}
	var wTotal float64
	var pTotal int64
	for _, st := range p.Stages {
		wTotal += st.TrainingWeight()
		pTotal += st.Params
	}
	t := Timing{
		StageSeconds: make([]float64, d),
		XferSeconds:  make([]float64, d-1),
	}
	for i, st := range p.Stages {
		soc := p.Placement[g][i]
		overhead := cluster.CPUBatchOverhead / pr.Clu.SoCs[soc].Throttle
		full := pr.Clu.StepTime(soc, pr.Spec, mb, cluster.CPU)
		t.StageSeconds[i] = (full-overhead)*st.TrainingWeight()/wTotal + overhead
		if frac := float64(st.Params) / float64(pTotal) * updateSeconds(pr.Spec); frac > t.UpdateSeconds {
			t.UpdateSeconds = frac
		}
	}
	for i := 0; i < d-1; i++ {
		bytes := float64(p.Stages[i].OutElems) * pr.ActScale * 4 * float64(mb)
		t.XferSeconds[i] = pr.boundarySeconds(p.Placement[g][i], p.Placement[g][i+1], bytes)
	}
	for i := 0; i < d; i++ {
		slot := t.StageSeconds[i]
		if i < d-1 {
			slot += t.XferSeconds[i]
		}
		if slot > t.Bottleneck {
			t.Bottleneck = slot
		}
	}
	t.IterSeconds = float64(p.MicroBatches+d-1)*t.Bottleneck + t.UpdateSeconds
	return t
}

// boundarySeconds prices one micro-batch crossing a stage boundary:
// the forward activations and the previous micro-batch's backward
// input-gradients are in flight simultaneously at steady state, on
// opposite directions of the same SoC pair.
func (pr *Pricer) boundarySeconds(a, b int, bytes float64) float64 {
	if a == b {
		return 0
	}
	pr.fwd = simnet.Flow{Name: "act.fwd", Path: pr.Clu.Path(a, b), Bytes: bytes}
	pr.bwd = simnet.Flow{Name: "act.bwd", Path: pr.Clu.Path(b, a), Bytes: bytes}
	return pr.sim.Simulate(pr.flows[:])
}

// CrossGroupSyncSeconds prices the pipeline plan's per-epoch delayed
// aggregation: each stage position averages its parameter slice across
// groups with a ring all-reduce over the SoCs holding that stage. The
// windows run sequentially — they contend on the same PCB uplinks —
// which is also how the executing strategy schedules them.
func (pr *Pricer) CrossGroupSyncSeconds(p *Plan) float64 {
	n := len(p.Placement)
	if n < 2 || p.Mode != ModePipeline {
		return 0
	}
	var pTotal int64
	for _, st := range p.Stages {
		pTotal += st.Params
	}
	if cap(pr.members) < n {
		pr.members = make([]int, n)
	}
	members := pr.members[:n]
	var sum float64
	for i, st := range p.Stages {
		for g := range p.Placement {
			members[g] = p.Placement[g][i]
		}
		payload := float64(st.Params) / float64(pTotal) * float64(pr.Spec.GradBytes())
		sum += collective.RingAllReduceTime(pr.Clu, members, payload)
	}
	return sum
}

// dataEpochSeconds prices a data-parallel candidate the way the
// executed schedule behaves: per-iteration compute is set by the
// slowest group member at its ceil(batch/k) share, intra-group rings
// run in the interleaved two-CG schedule (even/odd groups — the
// 2-coloring integrity-greedy mappings admit), layer-wise aggregation
// hides overlapFraction of compute behind the transfer, and the epoch
// ends with the delayed leader-ring + broadcast aggregation. This is
// the steady-state closed form of core's event-driven timeline.
func (pr *Pricer) dataEpochSeconds(p *Plan, iters int) float64 {
	n := len(p.Placement)
	k := len(p.Placement[0])
	perSoC := (p.Batch + k - 1) / k
	if perSoC < 1 {
		perSoC = 1
	}
	var compute float64
	for _, members := range p.Placement {
		for _, soc := range members {
			if t := pr.Clu.StepTime(soc, pr.Spec, perSoC, cluster.CPU); t > compute {
				compute = t
			}
		}
	}
	upd := updateSeconds(pr.Spec)
	payload := float64(pr.Spec.GradBytes())

	iterT := compute + upd
	if k > 1 {
		// Two interleaved CG windows (even / odd groups).
		var cgSync [2]float64
		for j := 0; j < 2 && j < n; j++ {
			var sets [][]int
			for g := j; g < n; g += 2 {
				sets = append(sets, p.Placement[g])
			}
			cgSync[j] = collective.ConcurrentRingTime(pr.Clu, sets, payload)
		}
		own := math.Max(cgSync[0], cgSync[1])
		nic := cgSync[0] + cgSync[1]
		iterT = math.Max(iterT, (1-overlapFraction)*(compute+upd)+own)
		iterT = math.Max(iterT, nic)
	}
	epoch := float64(iters) * iterT

	if n > 1 {
		// Delayed aggregation: leader ring + intra-group broadcast.
		if cap(pr.members) < n {
			pr.members = make([]int, n)
		}
		leaders := pr.members[:n]
		for g, members := range p.Placement {
			leaders[g] = members[0]
		}
		epoch += collective.RingAllReduceTime(pr.Clu, leaders, payload)
		var bMax float64
		for _, members := range p.Placement {
			if len(members) < 2 {
				continue
			}
			if b := collective.BroadcastTime(pr.Clu, members[0], members, payload); b > bMax {
				bMax = b
			}
		}
		epoch += bMax
	}
	return epoch
}
