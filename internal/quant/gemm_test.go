package quant

import (
	"math"
	"testing"

	"socflow/internal/tensor"
)

func refInt8T2(a []int8, sa float32, b []int8, sb []float32, bias []float32, m, k, n int, mul Multiplier) []float32 {
	dst := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += mul.Mul(a[i*k+p], b[j*k+p])
			}
			v := float32(acc) * (sa * sb[j])
			if bias != nil {
				v += bias[j]
			}
			dst[i*n+j] = v
		}
	}
	return dst
}

func randCodes(r *tensor.RNG, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(int(r.Float64()*255) - 127)
	}
	return out
}

func TestInt8MatMulT2MatchesReference(t *testing.T) {
	r := tensor.NewRNG(21)
	const m, k, n = 7, 13, 5
	a := randCodes(r, m*k)
	b := randCodes(r, n*k)
	sb := make([]float32, n)
	for j := range sb {
		sb[j] = 0.01 * float32(j+1)
	}
	bias := []float32{0.5, -0.25, 0, 1, -1}
	for _, mul := range []Multiplier{Exact{}, NewLUT(Exact{}.Mul), NewLUT(Mitchell{}.Mul)} {
		want := refInt8T2(a, 0.02, b, sb, bias, m, k, n, mul)
		got := make([]float32, m*n)
		Int8MatMulT2(got, a, 0.02, b, sb, bias, m, k, n, mul)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("mul %T: dst[%d] = %v, want %v", mul, i, got[i], want[i])
			}
		}
	}
}

func TestInt8MatMulMatchesReference(t *testing.T) {
	r := tensor.NewRNG(22)
	const m, k, n = 4, 9, 6
	a := randCodes(r, m*k)
	b := randCodes(r, k*n)
	for _, mul := range []Multiplier{Exact{}, NewLUT(Mitchell{}.Mul)} {
		want := make([]float32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc int32
				for p := 0; p < k; p++ {
					acc += mul.Mul(a[i*k+p], b[p*n+j])
				}
				want[i*n+j] = float32(acc) * (0.03 * 0.05)
			}
		}
		got := make([]float32, m*n)
		Int8MatMul(got, a, 0.03, b, 0.05, nil, m, k, n, mul)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("mul %T: dst[%d] = %v, want %v", mul, i, got[i], want[i])
			}
		}
	}
}

// TestLUTTabulatesExactly pins that a LUT built from a function returns
// that function's value for every operand pair, including the corners.
func TestLUTTabulatesExactly(t *testing.T) {
	l := NewLUT(Exact{}.Mul)
	for a := -128; a <= 127; a++ {
		for b := -128; b <= 127; b++ {
			if got, want := l.Mul(int8(a), int8(b)), int32(a)*int32(b); got != want {
				t.Fatalf("LUT(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestMitchellProperties checks the known behaviour of Mitchell's
// logarithmic multiplier: exact on powers of two and zero, correct
// sign, never overestimating, and within the classic ≈11.1% error
// bound everywhere.
func TestMitchellProperties(t *testing.T) {
	var mul Mitchell
	for a := -128; a <= 127; a++ {
		for b := -128; b <= 127; b++ {
			got := mul.Mul(int8(a), int8(b))
			exact := int32(a) * int32(b)
			if exact == 0 {
				if got != 0 {
					t.Fatalf("Mitchell(%d,%d) = %d, want 0", a, b, got)
				}
				continue
			}
			if (got < 0) != (exact < 0) {
				t.Fatalf("Mitchell(%d,%d) = %d: wrong sign (exact %d)", a, b, got, exact)
			}
			ag, ae := got, exact
			if ag < 0 {
				ag, ae = -ag, -ae
			}
			if ag > ae {
				t.Fatalf("Mitchell(%d,%d) = %d overestimates exact %d", a, b, got, exact)
			}
			// Max underestimate of the log-linear approximation is
			// (1+f1)(1+f2)/(1+f1+f2) ≤ 9/8 at f1=f2=1/2, i.e. ≈11.1%,
			// plus one ulp of q16 truncation.
			if float64(ag) < float64(ae)*(8.0/9.0)-1 {
				t.Fatalf("Mitchell(%d,%d) = %d: error beyond 11.1%% bound (exact %d)", a, b, got, exact)
			}
		}
	}
	// Powers of two multiply exactly.
	for _, a := range []int8{1, 2, 4, 8, 16, 32, 64, -64, -2} {
		for _, b := range []int8{1, 2, 4, 8, 16, 32, -8} {
			if got, want := mul.Mul(a, b), int32(a)*int32(b); got != want {
				t.Fatalf("Mitchell(%d,%d) = %d, want exact %d", a, b, got, want)
			}
		}
	}
}

func TestMultiplierByName(t *testing.T) {
	if m, err := MultiplierByName(""); err != nil || m != nil {
		t.Fatalf("empty name: got %v, %v", m, err)
	}
	if m, err := MultiplierByName("exact"); err != nil || m == nil {
		t.Fatalf("exact: got %v, %v", m, err)
	} else if m.Mul(-7, 9) != -63 {
		t.Fatalf("exact multiplier is wrong")
	}
	if m, err := MultiplierByName("mitchell"); err != nil || m == nil {
		t.Fatalf("mitchell: got %v, %v", m, err)
	} else if m.Mul(4, 8) != 32 {
		t.Fatalf("mitchell multiplier wrong on power of two")
	}
	if _, err := MultiplierByName("bogus"); err == nil {
		t.Fatalf("bogus name accepted")
	}
}

func TestQuantizeSliceRoundTrip(t *testing.T) {
	src := []float32{-2, -1, 0, 0.5, 1, 2}
	codes := make([]int8, len(src))
	s := QuantizeSlice(codes, src)
	for i, v := range src {
		got := float32(codes[i]) * s
		if d := got - v; d > s/2+1e-6 || d < -s/2-1e-6 {
			t.Fatalf("code %d dequantizes to %v, want within half a step of %v", codes[i], got, v)
		}
	}
	if codes[0] != -127 {
		t.Fatalf("absmax element must map to -127, got %d", codes[0])
	}
}

func TestQuantizeSlicePoisonsOnNaN(t *testing.T) {
	src := []float32{1, float32(math.NaN()), 2}
	codes := make([]int8, len(src))
	if s := QuantizeSlice(codes, src); !isNaN32(s) {
		t.Fatalf("NaN element produced finite scale %v", s)
	}
	// The NaN scale poisons every GEMM output through the rescale.
	dst := make([]float32, 1)
	Int8MatMulT2(dst, []int8{1, 1, 1}, nan32(), []int8{1, 1, 1}, []float32{1}, nil, 1, 3, 1, Exact{})
	if !isNaN32(dst[0]) {
		t.Fatalf("NaN activation scale did not poison the GEMM output: %v", dst[0])
	}
}

func TestQuantizeRowsPerChannelScales(t *testing.T) {
	src := []float32{1, -1, 0.5, 0, 100, -50, 25, 10}
	codes := make([]int8, len(src))
	scales := make([]float32, 2)
	QuantizeRows(codes, scales, src, 2)
	if scales[0] == scales[1] {
		t.Fatalf("rows with different ranges got the same scale %v", scales[0])
	}
	if codes[0] != 127 || codes[4] != 127 {
		t.Fatalf("each row's absmax must map to ±127: got %d, %d", codes[0], codes[4])
	}
}
