package quant

import (
	"fmt"
	"math"
	"math/bits"
)

// True-INT8 GEMM: int8×int8 products accumulate in int32 and each
// output element is rescaled to float32 exactly once, the arithmetic a
// real NPU (or an approximate-multiplier accelerator) performs. The
// 8-bit product itself is a pluggable seam — ApproxTrain-style — so
// the same kernels run with the exact hardware multiplier, a lookup
// table synthesized from an approximate circuit, or Mitchell's
// logarithmic multiplier.

// Multiplier is the 8-bit product seam: how two int8 operands multiply
// into the int32 accumulator.
type Multiplier interface {
	Mul(a, b int8) int32
}

// Exact is the precise hardware integer multiplier.
type Exact struct{}

// Mul implements Multiplier.
func (Exact) Mul(a, b int8) int32 { return int32(a) * int32(b) }

// LUT is a multiplier tabulated over all 256×256 operand pairs, the
// form approximate-circuit products ship in (and the fastest way to
// run any custom multiplier: one load instead of a recomputation).
type LUT struct {
	table [1 << 16]int32
}

// NewLUT tabulates f over every int8 operand pair.
func NewLUT(f func(a, b int8) int32) *LUT {
	l := &LUT{}
	for a := -128; a <= 127; a++ {
		for b := -128; b <= 127; b++ {
			l.table[lutIndex(int8(a), int8(b))] = f(int8(a), int8(b))
		}
	}
	return l
}

func lutIndex(a, b int8) uint32 {
	return uint32(uint8(a))<<8 | uint32(uint8(b))
}

// Mul implements Multiplier.
func (l *LUT) Mul(a, b int8) int32 { return l.table[lutIndex(a, b)] }

// Mitchell is Mitchell's logarithmic approximate multiplier:
// log2 of each operand is approximated as k + x/2^k (characteristic
// plus linear mantissa), the logs are added, and the antilog is
// approximated linearly again. Exact on powers of two, underestimates
// everything else by up to ≈11% — the classic area/energy-saving
// multiplier studied for approximate DNN accelerators.
type Mitchell struct{}

// Mul implements Multiplier with q16 fixed-point mantissas.
func (Mitchell) Mul(a, b int8) int32 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	ua := uint32(a)
	if a < 0 {
		ua = uint32(-int32(a))
	}
	ub := uint32(b)
	if b < 0 {
		ub = uint32(-int32(b))
	}
	k1 := uint(bits.Len32(ua) - 1)
	k2 := uint(bits.Len32(ub) - 1)
	f1 := ((ua - 1<<k1) << 16) >> k1 // q16 mantissa of log2(ua)
	f2 := ((ub - 1<<k2) << 16) >> k2
	s := uint64(f1 + f2)
	var p uint64
	if s < 1<<16 {
		// Fraction sum below 1: antilog ≈ 2^(k1+k2) · (1 + f1 + f2).
		p = ((1<<16 + s) << (k1 + k2)) >> 16
	} else {
		// Carry into the characteristic: 2^(k1+k2+1) · (f1 + f2 − 1)
		// scaled back up, i.e. 2^(k1+k2+1) · (1 + (s − 1)) with s−1 the
		// new fraction — which collapses to s · 2^(k1+k2+1) in q16.
		p = (s << (k1 + k2 + 1)) >> 16
	}
	if neg {
		return -int32(p)
	}
	return int32(p)
}

// MultiplierByName resolves a configuration string: "" (or "off")
// disables the true-INT8 kernels, "exact" is the precise integer
// multiplier, "mitchell" is the logarithmic approximate multiplier
// (tabulated, so it costs the same per product as any other LUT).
func MultiplierByName(name string) (Multiplier, error) {
	switch name {
	case "", "off":
		return nil, nil
	case "exact":
		return Exact{}, nil
	case "mitchell":
		return NewLUT(Mitchell{}.Mul), nil
	}
	return nil, fmt.Errorf("unknown INT8 multiplier %q (have exact, mitchell)", name)
}

// QuantizeSlice fills codes with the symmetric INT8 codes of src and
// returns the grid scale, the per-tensor activation quantization the
// INT8 GEMM consumes. A non-finite absmax — or any NaN element — poisons
// the result through a NaN scale: the GEMM's rescale multiplies every
// output by it, so the poison reaches every downstream value just as
// the float kernels propagate it.
func QuantizeSlice(codes []int8, src []float32) float32 {
	if len(codes) != len(src) {
		panic(fmt.Sprintf("quant: QuantizeSlice size mismatch %d vs %d", len(codes), len(src)))
	}
	var absMax float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > absMax {
			absMax = a
		}
	}
	s := scaleFor(absMax)
	if isNaN32(s) {
		return s
	}
	inv := 1 / s
	for i, v := range src {
		if isNaN32(v) {
			return nan32()
		}
		codes[i] = clampInt8(math.Round(float64(v * inv)))
	}
	return s
}

// QuantizeRows quantizes each of the rows of src onto its own
// symmetric INT8 grid — the per-output-channel weight quantization
// mobile INT8 stacks use — writing codes and per-row scales.
func QuantizeRows(codes []int8, scales []float32, src []float32, rows int) {
	stride := len(src) / rows
	for r := 0; r < rows; r++ {
		scales[r] = QuantizeSlice(codes[r*stride:(r+1)*stride], src[r*stride:(r+1)*stride])
	}
}

// Int8MatMulT2 computes dst[m,n] ≈ deq(a)·deq(b)ᵀ (+ bias): a is [m,k]
// with per-tensor scale sa, b is [n,k] with per-row scales sb (one per
// output channel — the conv/im2col weight layout). Accumulation is
// pure int32 through mul; each output element is rescaled exactly once
// by sa·sb[j], then the float32 bias is added. bias may be nil.
func Int8MatMulT2(dst []float32, a []int8, sa float32, b []int8, sb []float32, bias []float32, m, k, n int, mul Multiplier) {
	checkInt8GEMM(len(dst), len(a), len(b), m*k, n*k, m*n, len(sb), n)
	switch v := mul.(type) {
	case Exact:
		int8T2Exact(dst, a, sa, b, sb, bias, m, k, n)
	case *LUT:
		int8T2LUT(dst, a, sa, b, sb, bias, m, k, n, &v.table)
	default:
		int8T2Generic(dst, a, sa, b, sb, bias, m, k, n, mul)
	}
}

// Int8MatMul computes dst[m,n] ≈ deq(a)·deq(b) (+ bias): a is [m,k]
// with per-tensor scale sa, b is [k,n] with per-tensor scale sb (the
// dense-layer layout, where output columns cross every axis-0 channel
// so a single scale is the only one that factors out of the sum).
func Int8MatMul(dst []float32, a []int8, sa float32, b []int8, sb float32, bias []float32, m, k, n int, mul Multiplier) {
	checkInt8GEMM(len(dst), len(a), len(b), m*k, k*n, m*n, 0, 0)
	switch v := mul.(type) {
	case Exact:
		int8MMExact(dst, a, sa, b, sb, bias, m, k, n)
	case *LUT:
		int8MMLUT(dst, a, sa, b, sb, bias, m, k, n, &v.table)
	default:
		int8MMGeneric(dst, a, sa, b, sb, bias, m, k, n, mul)
	}
}

func checkInt8GEMM(nd, na, nb, wantA, wantB, wantD, nsb, wantSb int) {
	if na != wantA || nb != wantB || nd != wantD || nsb != wantSb {
		panic(fmt.Sprintf("quant: int8 GEMM size mismatch a=%d(%d) b=%d(%d) dst=%d(%d) sb=%d(%d)",
			na, wantA, nb, wantB, nd, wantD, nsb, wantSb))
	}
}

// The three kernel bodies per form are structurally identical; the
// multiply is kept monomorphic in the exact and LUT paths because an
// interface call per 8-bit product would cost more than the product.

func int8T2Exact(dst []float32, a []int8, sa float32, b []int8, sb []float32, bias []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var acc int32
			for p, av := range ar {
				acc += int32(av) * int32(br[p])
			}
			v := float32(acc) * (sa * sb[j])
			if bias != nil {
				v += bias[j]
			}
			out[j] = v
		}
	}
}

func int8T2LUT(dst []float32, a []int8, sa float32, b []int8, sb []float32, bias []float32, m, k, n int, table *[1 << 16]int32) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var acc int32
			for p, av := range ar {
				acc += table[lutIndex(av, br[p])]
			}
			v := float32(acc) * (sa * sb[j])
			if bias != nil {
				v += bias[j]
			}
			out[j] = v
		}
	}
}

func int8T2Generic(dst []float32, a []int8, sa float32, b []int8, sb []float32, bias []float32, m, k, n int, mul Multiplier) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var acc int32
			for p, av := range ar {
				acc += mul.Mul(av, br[p])
			}
			v := float32(acc) * (sa * sb[j])
			if bias != nil {
				v += bias[j]
			}
			out[j] = v
		}
	}
}

func int8MMExact(dst []float32, a []int8, sa float32, b []int8, sb float32, bias []float32, m, k, n int) {
	scale := sa * sb
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			var acc int32
			for p, av := range ar {
				acc += int32(av) * int32(b[p*n+j])
			}
			v := float32(acc) * scale
			if bias != nil {
				v += bias[j]
			}
			out[j] = v
		}
	}
}

func int8MMLUT(dst []float32, a []int8, sa float32, b []int8, sb float32, bias []float32, m, k, n int, table *[1 << 16]int32) {
	scale := sa * sb
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			var acc int32
			for p, av := range ar {
				acc += table[lutIndex(av, b[p*n+j])]
			}
			v := float32(acc) * scale
			if bias != nil {
				v += bias[j]
			}
			out[j] = v
		}
	}
}

func int8MMGeneric(dst []float32, a []int8, sa float32, b []int8, sb float32, bias []float32, m, k, n int, mul Multiplier) {
	scale := sa * sb
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		out := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			var acc int32
			for p, av := range ar {
				acc += mul.Mul(av, b[p*n+j])
			}
			v := float32(acc) * scale
			if bias != nil {
				v += bias[j]
			}
			out[j] = v
		}
	}
}
