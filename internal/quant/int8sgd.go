package quant

import (
	"math"

	"socflow/internal/tensor"
)

// Int8SGD performs the NPU-side weight update the way integer-only
// training frameworks (NITI, Mandheling) do: each weight tensor lives
// on a *persistent* per-channel INT8 grid, and an SGD step moves the
// integer codes by the stochastically rounded update. Keeping the grid
// fixed between steps matters — re-deriving the scale from the drifting
// absmax every step would re-round the whole tensor and inject a random
// walk far larger than real integer arithmetic does. The grid is
// re-anchored only when the weights outgrow it.
//
// The genuine INT8 degradation the paper observes (Observation #3)
// still emerges: updates smaller than the grid step survive only in
// expectation, so late training — when per-worker gradients shrink as
// 1/N — loses precision exactly as on the real NPU.
type Int8SGD struct {
	// LR is the learning rate applied to the dequantized gradient.
	LR float32
	// GradClip bounds the gradient absolute value before the update
	// (0 disables clipping).
	GradClip float32
	// RNG drives stochastic rounding; must be non-nil.
	RNG *tensor.RNG

	// scales holds the persistent per-channel grid scale of each
	// weight tensor, keyed by the tensor itself.
	scales map[*tensor.Tensor][]float32
}

// headroom is the slack the grid allows above the current absmax when a
// scale is (re)anchored, so ordinary training drift does not force
// constant re-gridding.
const headroom = 1.5

// channelsOf returns the channel count and per-channel stride for a
// weight tensor (axis 0 = channels; 1-D tensors are one channel).
func channelsOf(w *tensor.Tensor) (ch, stride int) {
	if w.Dims() < 2 || w.Shape[0] <= 1 {
		return 1, len(w.Data)
	}
	return w.Shape[0], len(w.Data) / w.Shape[0]
}

// scaleOf returns (anchoring if needed) the persistent per-channel
// scales for w.
func (o *Int8SGD) scaleOf(w *tensor.Tensor) []float32 {
	if o.scales == nil {
		o.scales = make(map[*tensor.Tensor][]float32)
	}
	if s, ok := o.scales[w]; ok {
		return s
	}
	s := o.anchor(w)
	o.scales[w] = s
	return s
}

// anchor derives fresh per-channel scales with headroom.
func (o *Int8SGD) anchor(w *tensor.Tensor) []float32 {
	ch, stride := channelsOf(w)
	s := make([]float32, ch)
	for c := 0; c < ch; c++ {
		row := w.Data[c*stride : (c+1)*stride]
		var absMax float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > absMax {
				absMax = a
			}
		}
		s[c] = scaleFor(absMax * headroom)
	}
	return s
}

// Step applies one integer SGD update:
//
//	codes <- clamp(codes - stochastic_round(lr·fakequant(g)/scale))
//
// with per-channel scales that persist across steps. If any channel's
// weights have outgrown its grid, the tensor is re-anchored first.
func (o *Int8SGD) Step(w, g *tensor.Tensor) {
	gq := tensor.Scratch.GetTensor(g.Shape...)
	defer tensor.Scratch.ReleaseTensor(gq)
	if o.GradClip > 0 {
		gq.CopyFrom(g)
		tensor.ClipInPlace(gq, o.GradClip)
		FakeQuantizeInto(gq, gq)
	} else {
		FakeQuantizeInto(gq, g)
	}

	s := o.scaleOf(w)
	ch, stride := channelsOf(w)
	regrid := false
	for c := 0; c < ch; c++ {
		scale := s[c]
		limit := scale * 127
		row := w.Data[c*stride : (c+1)*stride]
		grow := gq.Data[c*stride : (c+1)*stride]
		inv := 1 / scale
		for i := range row {
			x := float64((row[i] - o.LR*grow[i]) * inv)
			if x != x {
				// NaN weight, gradient, or scale: keep the poison
				// explicit instead of feeding NaN to int8 conversion.
				row[i] = nan32()
				continue
			}
			lo := math.Floor(x)
			r := lo
			if o.RNG.Float64() < x-lo {
				r = lo + 1
			}
			v := float32(clampInt8(r)) * scale
			row[i] = v
			if v >= limit || v <= -limit {
				regrid = true
			}
		}
	}
	if regrid {
		o.scales[w] = o.anchor(w)
	}
}

// StepParams applies Step to each (weight, gradient) pair.
func (o *Int8SGD) StepParams(ws, gs []*tensor.Tensor) {
	if len(ws) != len(gs) {
		panic("quant: StepParams length mismatch")
	}
	for i := range ws {
		o.Step(ws[i], gs[i])
	}
}

// Requantize nearest-rounds w onto its persistent grid, re-anchoring
// first if any value outgrew it. SoCFlow's Eq. 5 merge calls this after
// blending the FP32 and INT8 replicas so the NPU side returns to its
// own grid without the grid itself drifting.
func (o *Int8SGD) Requantize(w *tensor.Tensor) {
	s := o.scaleOf(w)
	ch, stride := channelsOf(w)
	// Re-anchor if the merged weights escaped the grid.
	for c := 0; c < ch; c++ {
		limit := s[c] * 127
		row := w.Data[c*stride : (c+1)*stride]
		for _, v := range row {
			if v > limit || v < -limit {
				s = o.anchor(w)
				o.scales[w] = s
				c = ch // break outer
				break
			}
		}
	}
	for c := 0; c < ch; c++ {
		fakeQuantRange(w.Data[c*stride:(c+1)*stride], w.Data[c*stride:(c+1)*stride], s[c])
	}
}
