// Package quant implements the INT8 quantized-training substrate that
// stands in for the paper's NPU backend (Mandheling / NITI-style
// integer training on the Hexagon DSP).
//
// The NPU effects that matter to SoCFlow are (a) a large speedup over
// the CPU and (b) an accuracy degradation that grows as training
// progresses and as the update magnitude shrinks (Observation #3,
// Fig. 4(c)). Both are reproduced faithfully: speed comes from the
// cluster performance model, and degradation emerges from genuine
// quantization — weights live on persistent per-channel INT8 grids
// (Int8SGD), activations are fake-quantized layer by layer on the NPU
// datapath, gradients pass through the INT8 grid before the update,
// and updates smaller than the grid step survive only in expectation
// via stochastic rounding — exactly the mechanism that makes INT8
// training lag FP32 near convergence.
package quant

import (
	"fmt"
	"math"

	"socflow/internal/tensor"
)

// QTensor is an INT8-quantized tensor: int8 codes plus a single
// symmetric per-tensor scale, so value ≈ float32(code) * Scale.
type QTensor struct {
	Shape []int
	Codes []int8
	Scale float32
}

// Quantize converts t to INT8 with a symmetric per-tensor scale chosen
// so the absolute maximum maps to ±127. A zero tensor quantizes with
// scale 1 (all-zero codes).
func Quantize(t *tensor.Tensor) *QTensor {
	q := &QTensor{
		Shape: append([]int(nil), t.Shape...),
		Codes: make([]int8, len(t.Data)),
		Scale: scaleFor(t.AbsMax()),
	}
	if isNaN32(q.Scale) {
		return q // poisoned: dequantizes to all-NaN
	}
	inv := 1 / q.Scale
	for i, v := range t.Data {
		if isNaN32(v) {
			// AbsMax is NaN-blind, so a NaN element can reach here
			// under a finite scale. int8 codes cannot carry NaN, so
			// poison the whole tensor through the scale instead of
			// silently converting NaN to a platform-dependent int8.
			q.Scale = nan32()
			return q
		}
		q.Codes[i] = clampInt8(math.Round(float64(v * inv)))
	}
	return q
}

// QuantizeStochastic converts t to INT8 using stochastic rounding: a
// value between two grid points rounds up with probability equal to its
// fractional position. Stochastic rounding keeps the *expected* update
// unbiased, which is why integer-training schemes (NITI, UI8) rely on
// it; the variance it injects is the genuine source of INT8 accuracy
// loss.
func QuantizeStochastic(t *tensor.Tensor, rng *tensor.RNG) *QTensor {
	q := &QTensor{
		Shape: append([]int(nil), t.Shape...),
		Codes: make([]int8, len(t.Data)),
		Scale: scaleFor(t.AbsMax()),
	}
	if isNaN32(q.Scale) {
		return q // poisoned: dequantizes to all-NaN
	}
	inv := 1 / q.Scale
	for i, v := range t.Data {
		if isNaN32(v) {
			q.Scale = nan32()
			return q
		}
		x := float64(v * inv)
		lo := math.Floor(x)
		frac := x - lo
		r := lo
		if rng.Float64() < frac {
			r = lo + 1
		}
		q.Codes[i] = clampInt8(r)
	}
	return q
}

// Dequantize converts q back to float32.
func (q *QTensor) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, c := range q.Codes {
		t.Data[i] = float32(c) * q.Scale
	}
	return t
}

// Size returns the number of elements.
func (q *QTensor) Size() int { return len(q.Codes) }

// Bytes returns the wire size of the quantized tensor (1 byte per code
// plus the 4-byte scale), the figure the communication model uses when
// INT8 gradients are exchanged.
func (q *QTensor) Bytes() int { return len(q.Codes) + 4 }

// Clone returns a deep copy.
func (q *QTensor) Clone() *QTensor {
	c := &QTensor{Shape: append([]int(nil), q.Shape...), Codes: make([]int8, len(q.Codes)), Scale: q.Scale}
	copy(c.Codes, q.Codes)
	return c
}

// FakeQuantize rounds t onto its INT8 grid and back, returning a new
// float32 tensor. This is the standard simulated-quantization operator:
// the result is exactly what the NPU would compute with, while staying
// in float32 for the rest of the pipeline.
func FakeQuantize(t *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(t.Shape...)
	FakeQuantizeInto(out, t)
	return out
}

// FakeQuantizeInto rounds t onto its INT8 grid and back into an
// existing tensor of the same element count, overwriting it. dst may
// alias t. Results are bit-identical to FakeQuantize.
func FakeQuantizeInto(dst, t *tensor.Tensor) {
	if len(dst.Data) != len(t.Data) {
		panic(fmt.Sprintf("quant: FakeQuantizeInto size mismatch %v vs %v", dst.Shape, t.Shape))
	}
	fakeQuantRange(dst.Data, t.Data, scaleFor(t.AbsMax()))
}

// FakeQuantizeInPlace rounds t onto its INT8 grid in place.
func FakeQuantizeInPlace(t *tensor.Tensor) {
	fakeQuantRange(t.Data, t.Data, scaleFor(t.AbsMax()))
}

// fakeQuantRange rounds src onto the grid of scale s into dst (which
// may alias src). A NaN scale (non-finite absmax) poisons every output;
// a NaN element under a finite scale stays NaN instead of passing
// through the int8 conversion, so exploding-gradient evidence survives
// quantization exactly as it survives the GEMM kernels.
func fakeQuantRange(dst, src []float32, s float32) {
	if isNaN32(s) {
		for i := range dst {
			dst[i] = nan32()
		}
		return
	}
	inv := 1 / s
	for i, v := range src {
		if isNaN32(v) {
			dst[i] = v
			continue
		}
		dst[i] = float32(clampInt8(math.Round(float64(v*inv)))) * s
	}
}

// QuantError returns the relative L2 quantization error
// ‖t − deq(quant(t))‖ / ‖t‖, or 0 for a zero tensor. The engine uses it
// as a cheap health metric alongside α.
func QuantError(t *tensor.Tensor) float32 {
	n := t.L2Norm()
	if n == 0 {
		return 0
	}
	d := tensor.Sub(t, FakeQuantize(t))
	return d.L2Norm() / n
}

// scaleFor maps an absolute maximum to the symmetric grid scale. A
// non-finite absMax (Inf from an overflowed tensor; NaN cannot occur
// since AbsMax skips NaN) yields a NaN scale, which every quantization
// entry point treats as "poison the result" rather than producing
// finite garbage.
func scaleFor(absMax float32) float32 {
	if absMax == 0 {
		return 1
	}
	if isNaN32(absMax) || absMax > math.MaxFloat32 || absMax < -math.MaxFloat32 {
		return nan32()
	}
	return absMax / 127
}

// clampInt8 clamps a rounded value onto the symmetric ±127 grid. The
// scale is absMax/127, so code -128 would dequantize to a magnitude
// *above* absMax — off the symmetric grid, biasing updates negative.
// Stochastic rounding can produce -128 (a value pinned at -absMax maps
// to -127-ε after the scale round-trip and rounds down), so the clamp
// must be symmetric. Callers must filter NaN before clamping: int8(NaN)
// is platform-dependent.
func clampInt8(x float64) int8 {
	if x > 127 {
		return 127
	}
	if x < -127 {
		return -127
	}
	return int8(x)
}

func isNaN32(v float32) bool { return v != v }

func nan32() float32 { return float32(math.NaN()) }

// LogitConfidence computes SoCFlow's α metric (Eq. 4): the cosine
// similarity between the FP32 model's logits and the INT8 model's
// logits on a validation probe. Both tensors must be [batch, classes].
// The result is clamped to [0, 1]: a negative cosine means the INT8
// model has become useless, which the controller treats the same as 0.
func LogitConfidence(fp32Logits, int8Logits *tensor.Tensor) float32 {
	if !fp32Logits.SameShape(int8Logits) {
		panic(fmt.Sprintf("quant: LogitConfidence shape mismatch %v vs %v", fp32Logits.Shape, int8Logits.Shape))
	}
	a := tensor.CosineSimilarity(fp32Logits, int8Logits)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// FakeQuantizePerChannelInPlace rounds t onto per-channel INT8 grids,
// treating the first dimension as the channel axis (the layout of conv
// kernels [OutC, InC·K·K] and dense weights). Per-channel scales are
// what mobile INT8 stacks (NNAPI, QNN, Mandheling) use for weights —
// the error is several times smaller than a single per-tensor scale.
// Tensors with fewer than 2 dimensions fall back to per-tensor.
func FakeQuantizePerChannelInPlace(t *tensor.Tensor) {
	if t.Dims() < 2 || t.Shape[0] <= 1 {
		FakeQuantizeInPlace(t)
		return
	}
	ch := t.Shape[0]
	stride := len(t.Data) / ch
	for c := 0; c < ch; c++ {
		row := t.Data[c*stride : (c+1)*stride]
		var absMax float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > absMax {
				absMax = a
			}
		}
		fakeQuantRange(row, row, scaleFor(absMax))
	}
}

// QuantizeStochasticPerChannelInPlace applies stochastic rounding onto
// per-channel INT8 grids in place, the integer-SGD weight storage
// format.
func QuantizeStochasticPerChannelInPlace(t *tensor.Tensor, rng *tensor.RNG) {
	if t.Dims() < 2 || t.Shape[0] <= 1 {
		q := QuantizeStochastic(t, rng)
		copy(t.Data, q.Dequantize().Data)
		return
	}
	ch := t.Shape[0]
	stride := len(t.Data) / ch
	for c := 0; c < ch; c++ {
		row := t.Data[c*stride : (c+1)*stride]
		var absMax float32
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > absMax {
				absMax = a
			}
		}
		s := scaleFor(absMax)
		if isNaN32(s) {
			for i := range row {
				row[i] = nan32()
			}
			continue
		}
		inv := 1 / s
		for i, v := range row {
			if isNaN32(v) {
				continue // already NaN; int8(NaN) would destroy it
			}
			x := float64(v * inv)
			lo := math.Floor(x)
			r := lo
			if rng.Float64() < x-lo {
				r = lo + 1
			}
			row[i] = float32(clampInt8(r)) * s
		}
	}
}
