package quant

import (
	"testing"

	"socflow/internal/tensor"
)

// The symmetric grid's scale is absMax/127, so the representable codes
// are exactly [-127, 127]: code -128 dequantizes to a magnitude ABOVE
// absMax, off the grid, and (because it only ever appears on the
// negative side) biases updates negative. clampInt8 used to admit -128.

func TestClampInt8SymmetricGrid(t *testing.T) {
	cases := []struct {
		in   float64
		want int8
	}{
		{-127.0000076, -127}, // the value a tensor pinned at -absMax round-trips to
		{-128, -127},
		{-1e9, -127},
		{127.5, 127},
		{1e9, 127},
		{-126.4, -126},
		{126.4, 126},
		{0, 0},
	}
	for _, c := range cases {
		if got := clampInt8(c.in); got != c.want {
			t.Errorf("clampInt8(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestStochasticQuantizePinnedAtNegAbsMax is the end-to-end form: a
// tensor pinned at -absMax maps to x slightly below -127 after the
// scale round-trip (absMax=0.001 gives x ≈ -127.0000076, so each
// element floors to -128 with probability ≈ 7.6e-6). Over a million
// elements the pre-fix code emits -128 with near certainty.
func TestStochasticQuantizePinnedAtNegAbsMax(t *testing.T) {
	const absMax = 0.001
	x := tensor.New(1 << 20)
	for i := range x.Data {
		x.Data[i] = -absMax
	}
	q := QuantizeStochastic(x, tensor.NewRNG(9))
	for i, c := range q.Codes {
		if c < -127 {
			t.Fatalf("code %d at %d escaped the symmetric grid [-127, 127]", c, i)
		}
	}
}

// TestInt8SGDStepStaysOnGrid drives the update far past the negative
// grid edge: the clamp must land on -127 (magnitude exactly 127·scale),
// never -128.
func TestInt8SGDStepStaysOnGrid(t *testing.T) {
	w := tensor.New(2, 16)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	g := tensor.New(2, 16)
	for i := range g.Data {
		g.Data[i] = 50 // update overshoots the grid by orders of magnitude
	}
	opt := &Int8SGD{LR: 1, RNG: tensor.NewRNG(11)}
	limit := scaleFor(0.5*headroom) * 127
	opt.Step(w, g)
	for i, v := range w.Data {
		if v < -limit || v > limit {
			t.Fatalf("w[%d] = %v escaped the grid (limit %v): code -128 admitted", i, v, limit)
		}
	}
}

// TestStochasticPerChannelStaysOnGrid covers the in-place per-channel
// stochastic path with rows pinned at their negative absmax.
func TestStochasticPerChannelStaysOnGrid(t *testing.T) {
	const absMax = 0.001
	x := tensor.New(4, 1<<18)
	for i := range x.Data {
		x.Data[i] = -absMax
	}
	QuantizeStochasticPerChannelInPlace(x, tensor.NewRNG(13))
	scale := scaleFor(absMax)
	limit := scale * 127
	for i, v := range x.Data {
		if v < -limit {
			t.Fatalf("x[%d] = %v below -127·scale = %v", i, v, -limit)
		}
	}
}
