package quant

import (
	"math"
	"testing"
	"testing/quick"

	"socflow/internal/tensor"
)

func TestQuantizeRoundTripBound(t *testing.T) {
	r := tensor.NewRNG(1)
	x := tensor.RandNormal(r, 0, 2, 100)
	q := Quantize(x)
	d := q.Dequantize()
	// Nearest-rounding error is at most half the grid step per element.
	half := q.Scale / 2
	for i := range x.Data {
		if diff := float64(x.Data[i] - d.Data[i]); math.Abs(diff) > float64(half)+1e-6 {
			t.Fatalf("round-trip error %v exceeds half step %v", diff, half)
		}
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	q := Quantize(tensor.New(5))
	if q.Scale != 1 {
		t.Fatalf("zero tensor scale = %v, want 1", q.Scale)
	}
	for _, c := range q.Codes {
		if c != 0 {
			t.Fatal("zero tensor must quantize to zero codes")
		}
	}
}

func TestQuantizeExtremesHitLimits(t *testing.T) {
	x := tensor.FromSlice([]float32{-3, 0, 3}, 3)
	q := Quantize(x)
	if q.Codes[0] != -127 || q.Codes[2] != 127 || q.Codes[1] != 0 {
		t.Fatalf("codes = %v, want [-127 0 127]", q.Codes)
	}
}

func TestQTensorBytes(t *testing.T) {
	q := Quantize(tensor.Ones(10))
	if q.Bytes() != 14 {
		t.Fatalf("Bytes = %d, want 14", q.Bytes())
	}
	if q.Size() != 10 {
		t.Fatalf("Size = %d", q.Size())
	}
}

func TestQTensorClone(t *testing.T) {
	q := Quantize(tensor.Ones(3))
	c := q.Clone()
	c.Codes[0] = 0
	if q.Codes[0] == 0 {
		t.Fatal("Clone must deep-copy codes")
	}
}

func TestStochasticRoundingUnbiased(t *testing.T) {
	// A value exactly between two grid points should round up ~half the
	// time, keeping the expectation unbiased.
	rng := tensor.NewRNG(7)
	x := tensor.FromSlice([]float32{127, 0.5}, 2) // scale = 1, second value sits mid-grid
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		q := QuantizeStochastic(x, rng)
		sum += float64(q.Codes[1])
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("stochastic rounding mean = %v, want ~0.5", mean)
	}
}

func TestFakeQuantizeIdempotent(t *testing.T) {
	r := tensor.NewRNG(3)
	x := tensor.RandNormal(r, 0, 1, 64)
	once := FakeQuantize(x)
	twice := FakeQuantize(once)
	for i := range once.Data {
		if math.Abs(float64(once.Data[i]-twice.Data[i])) > 1e-6 {
			t.Fatalf("fake-quantize not idempotent at %d: %v vs %v", i, once.Data[i], twice.Data[i])
		}
	}
}

func TestFakeQuantizeInPlaceMatches(t *testing.T) {
	r := tensor.NewRNG(4)
	x := tensor.RandNormal(r, 0, 1, 32)
	want := FakeQuantize(x)
	FakeQuantizeInPlace(x)
	for i := range x.Data {
		if x.Data[i] != want.Data[i] {
			t.Fatalf("in-place mismatch at %d", i)
		}
	}
}

func TestQuantErrorProperties(t *testing.T) {
	if QuantError(tensor.New(8)) != 0 {
		t.Fatal("zero tensor must have zero quant error")
	}
	r := tensor.NewRNG(5)
	x := tensor.RandNormal(r, 0, 1, 1000)
	e := QuantError(x)
	if e <= 0 || e > 0.05 {
		t.Fatalf("INT8 relative error = %v, want small positive", e)
	}
}

func TestLogitConfidenceRange(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	if got := LogitConfidence(a, a); got < 0.999 {
		t.Fatalf("identical logits α = %v, want 1", got)
	}
	b := tensor.FromSlice([]float32{-1, 0, 0, -1}, 2, 2)
	if got := LogitConfidence(a, b); got != 0 {
		t.Fatalf("opposite logits α = %v, want 0 (clamped)", got)
	}
}

// Property: quantization round trip error is bounded by scale/2 + eps
// for arbitrary random tensors, and the scale always maps AbsMax to 127.
func TestQuantizeBoundProperty(t *testing.T) {
	root := tensor.NewRNG(99)
	f := func(seed uint64) bool {
		r := root.Split(seed)
		n := 1 + r.Intn(200)
		x := tensor.RandNormal(r, 0, 1+10*r.Float32(), n)
		q := Quantize(x)
		d := q.Dequantize()
		for i := range x.Data {
			if math.Abs(float64(x.Data[i]-d.Data[i])) > float64(q.Scale)/2+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: stochastic quantization is unbiased in expectation — the
// mean dequantized value over many draws approaches the true value.
func TestStochasticUnbiasedProperty(t *testing.T) {
	rng := tensor.NewRNG(13)
	x := tensor.FromSlice([]float32{127, 31.7}, 2) // scale 1, fractional value
	var sum float64
	const n = 6000
	for i := 0; i < n; i++ {
		q := QuantizeStochastic(x, rng)
		sum += float64(q.Codes[1])
	}
	if mean := sum / n; math.Abs(mean-31.7) > 0.15 {
		t.Fatalf("stochastic mean = %v, want ≈31.7", mean)
	}
}

func TestInt8SGDGridIsPersistent(t *testing.T) {
	// Once on its grid, a zero-gradient step must leave the weights
	// exactly in place: the grid does not drift between steps (the
	// property that distinguishes integer training from naive
	// re-quantization).
	rng := tensor.NewRNG(21)
	w := tensor.RandNormal(rng, 0, 1, 10, 5)
	zero := tensor.New(10, 5)
	opt := &Int8SGD{LR: 0.1, RNG: rng}
	opt.Step(w, zero) // anchors the grid and rounds onto it
	snapshot := w.Clone()
	for i := 0; i < 5; i++ {
		opt.Step(w, zero)
	}
	for i := range w.Data {
		if w.Data[i] != snapshot.Data[i] {
			t.Fatalf("zero-gradient steps moved weight %d: %v -> %v", i, snapshot.Data[i], w.Data[i])
		}
	}
}

func TestInt8SGDRequantizeIdempotent(t *testing.T) {
	rng := tensor.NewRNG(29)
	w := tensor.RandNormal(rng, 0, 1, 8, 4)
	opt := &Int8SGD{LR: 0.1, RNG: rng}
	opt.Requantize(w)
	once := w.Clone()
	opt.Requantize(w)
	for i := range w.Data {
		if w.Data[i] != once.Data[i] {
			t.Fatalf("Requantize not idempotent at %d", i)
		}
	}
}

func TestInt8SGDStepDescends(t *testing.T) {
	// A large gradient must move weights in the descent direction by
	// roughly lr·g despite grid rounding.
	rng := tensor.NewRNG(31)
	w := tensor.Ones(4, 4)
	g := tensor.Full(1, 4, 4)
	opt := &Int8SGD{LR: 0.5, RNG: rng}
	opt.Step(w, g)
	for _, v := range w.Data {
		if math.Abs(float64(v)-0.5) > 0.05 {
			t.Fatalf("descent step landed at %v, want ≈0.5", v)
		}
	}
}

func TestInt8SGDLosesTinyUpdates(t *testing.T) {
	// With a gradient far smaller than the grid step, most of the update
	// is lost per-step (recovered only in expectation). This is the
	// mechanism behind the paper's INT8 accuracy degradation.
	rng := tensor.NewRNG(22)
	// Element 0 anchors the scale at 2 (grid step 2/127 ≈ 0.0157);
	// element 1 receives an update ~150x smaller than the step.
	w := tensor.FromSlice([]float32{2, 1}, 2)
	g := tensor.FromSlice([]float32{0, 1e-4}, 2)
	opt := &Int8SGD{LR: 1, RNG: rng}
	exact := w.Data[1] - 1e-4
	opt.Step(w, g)
	// The realized value snaps to the INT8 grid, so its distance from
	// the exact SGD result dwarfs the intended update.
	if dev := math.Abs(float64(w.Data[1] - exact)); dev < 1e-3 {
		t.Fatalf("tiny update survived exactly (deviation %v); grid rounding should dominate", dev)
	}
}

func TestInt8SGDGradClip(t *testing.T) {
	rng := tensor.NewRNG(23)
	w := tensor.New(2)
	g := tensor.FromSlice([]float32{100, -100}, 2)
	opt := &Int8SGD{LR: 0.01, GradClip: 1, RNG: rng}
	opt.Step(w, g)
	// With clip 1 and lr 0.01 the step magnitude is ≈0.01; stochastic
	// requantization keeps it within one grid step of that.
	for _, v := range w.Data {
		if math.Abs(float64(v)) > 0.05 {
			t.Fatalf("clip failed, weight = %v", v)
		}
	}
	// The caller's gradient must not be mutated by clipping.
	if g.Data[0] != 100 {
		t.Fatal("Step must not mutate the caller's gradient")
	}
}

func TestStepParamsLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched StepParams must panic")
		}
	}()
	opt := &Int8SGD{LR: 0.1, RNG: tensor.NewRNG(1)}
	opt.StepParams([]*tensor.Tensor{tensor.New(1)}, nil)
}
