package quant

import (
	"math"
	"testing"

	"socflow/internal/tensor"
)

// Quantization used to destroy NaN evidence: AbsMax skips NaN (a > m is
// false), so a tensor holding NaN got a finite scale and clampInt8(NaN)
// fell through both comparisons into a platform-dependent int8(NaN)
// conversion — the poison the GEMM kernels deliberately preserve
// (tensor/nan_test.go) silently became a small finite weight. These
// regressions pin the fix across every quantization entry point.

func nanT(shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(i%7) - 3
	}
	t.Data[len(t.Data)/2] = float32(math.NaN())
	return t
}

func countNaN(t *tensor.Tensor) int {
	n := 0
	for _, v := range t.Data {
		if v != v {
			n++
		}
	}
	return n
}

func TestQuantizePoisonsOnNaN(t *testing.T) {
	q := Quantize(nanT(4, 5))
	if !isNaN32(q.Scale) {
		t.Fatalf("Quantize of NaN tensor produced finite scale %v", q.Scale)
	}
	d := q.Dequantize()
	if countNaN(d) != len(d.Data) {
		t.Fatalf("poisoned QTensor dequantized to finite values: %v", d.Data)
	}
}

func TestQuantizePoisonsOnInf(t *testing.T) {
	x := tensor.New(3, 3)
	x.Data[4] = float32(math.Inf(1))
	q := Quantize(x)
	if !isNaN32(q.Scale) {
		t.Fatalf("Quantize of Inf tensor produced finite scale %v", q.Scale)
	}
}

func TestQuantizeStochasticPoisonsOnNaN(t *testing.T) {
	q := QuantizeStochastic(nanT(4, 5), tensor.NewRNG(1))
	if !isNaN32(q.Scale) {
		t.Fatalf("QuantizeStochastic of NaN tensor produced finite scale %v", q.Scale)
	}
}

func TestFakeQuantizePreservesNaN(t *testing.T) {
	x := nanT(6, 6)
	nanIdx := len(x.Data) / 2
	out := FakeQuantize(x)
	if !isNaN32(out.Data[nanIdx]) {
		t.Fatalf("FakeQuantize converted NaN to %v", out.Data[nanIdx])
	}
	// Clean elements stay finite: the poison is per-element here, since
	// the result remains a float tensor that can carry it.
	if isNaN32(out.Data[0]) {
		t.Fatalf("FakeQuantize leaked NaN into clean element")
	}
}

func TestFakeQuantizePoisonsAllOnInf(t *testing.T) {
	x := tensor.New(8)
	x.Data[3] = float32(math.Inf(-1))
	out := FakeQuantize(x)
	if countNaN(out) != len(out.Data) {
		t.Fatalf("Inf absmax must poison the whole tensor, got %v", out.Data)
	}
}

func TestFakeQuantizePerChannelPreservesNaN(t *testing.T) {
	x := nanT(4, 9)
	nanIdx := len(x.Data) / 2
	FakeQuantizePerChannelInPlace(x)
	if !isNaN32(x.Data[nanIdx]) {
		t.Fatalf("per-channel fake quant converted NaN to %v", x.Data[nanIdx])
	}
	if isNaN32(x.Data[0]) {
		t.Fatalf("per-channel fake quant leaked NaN into a clean channel")
	}
}

func TestQuantizeStochasticPerChannelPreservesNaN(t *testing.T) {
	x := nanT(4, 9)
	nanIdx := len(x.Data) / 2
	QuantizeStochasticPerChannelInPlace(x, tensor.NewRNG(2))
	if !isNaN32(x.Data[nanIdx]) {
		t.Fatalf("per-channel stochastic quant converted NaN to %v", x.Data[nanIdx])
	}
}

func TestInt8SGDStepPropagatesNaNGradient(t *testing.T) {
	w := tensor.New(2, 8)
	for i := range w.Data {
		w.Data[i] = 0.5
	}
	g := tensor.New(2, 8)
	g.Data[5] = float32(math.NaN())
	opt := &Int8SGD{LR: 0.1, RNG: tensor.NewRNG(3)}
	opt.Step(w, g)
	if !isNaN32(w.Data[5]) {
		t.Fatalf("Int8SGD.Step hid a NaN gradient: w[5] = %v", w.Data[5])
	}
	if isNaN32(w.Data[0]) {
		t.Fatalf("Int8SGD.Step leaked NaN into a clean weight")
	}
}

func TestInt8SGDRequantizePreservesNaN(t *testing.T) {
	w := tensor.New(2, 8)
	for i := range w.Data {
		w.Data[i] = 0.25
	}
	opt := &Int8SGD{LR: 0.1, RNG: tensor.NewRNG(4)}
	opt.Step(w, tensor.New(2, 8)) // anchor the grid while w is clean
	w.Data[3] = float32(math.NaN())
	opt.Requantize(w)
	if !isNaN32(w.Data[3]) {
		t.Fatalf("Requantize converted NaN to %v", w.Data[3])
	}
}
