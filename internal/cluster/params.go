// Package cluster models the commercial SoC-Cluster server the paper
// evaluates on (§2.1, Fig. 2): 60 Snapdragon 865 SoCs on 12 PCBs with
// five SoCs each, 1 Gbps links from every SoC to its PCB NIC, 1 Gbps
// from every PCB to the Ethernet switch, and a 20 Gbps switch fabric.
// It provides the per-SoC compute-time model, the simnet topology, the
// energy model, datacenter-GPU comparators, and the tidal utilization
// traces — everything the performance track needs.
package cluster

// Calibration constants. Each value is fitted to a measurement the
// paper reports; the fit target is cited inline. See DESIGN.md §5.
const (
	// SoCCPUGflops is the effective FP32 training throughput of the
	// Snapdragon 865's four big Kryo 585 cores. Fitted to §2.3 /
	// Fig. 4(a): VGG-11 on CIFAR-10 (50k samples, ~40 epochs to its
	// 84.5% convergence accuracy, 3x-forward training cost) takes
	// 29.1 h on the mobile CPU. The joint fit with the Fig. 13
	// ablation (mixed precision must buy a multi-x speedup, so compute
	// must rival communication per iteration) lands at ~8.8 GFLOP/s —
	// consistent with MNN FP32 training on 4 big cores.
	SoCCPUGflops = 8.8

	// CPUBatchOverhead and NPUBatchOverhead are fixed per-mini-batch
	// costs (operator dispatch, data staging) that dominate for tiny
	// models like LeNet-5, where FLOPs alone would predict absurdly
	// fast epochs. Typical MNN/Mandheling dispatch costs on the 865.
	CPUBatchOverhead = 0.020 // seconds
	NPUBatchOverhead = 0.012 // seconds

	// SoCLinkBps is the 1 Gbps SoC <-> PCB-NIC SAS link (§2.1).
	SoCLinkBps = 125e6
	// PCBLinkBps is the 1 Gbps PCB <-> switch link (§2.1).
	PCBLinkBps = 125e6
	// FabricBps is the 20 Gbps switch fabric (dual SFP+, §2.1).
	FabricBps = 2.5e9
	// LinkLatencySec is the per-hop latency; small but it accumulates
	// over ring steps.
	LinkLatencySec = 0.0002

	// SyncStartupPerSoC is the per-participant cost of preparing and
	// starting a collective (connection churn, tensor registration).
	// Fitted to §2.3: "32-SoC weight aggregation's preparing and
	// starting the communication for the ResNet18 model takes 1300 ms"
	// => ~40 ms per SoC.
	SyncStartupPerSoC = 0.040

	// Power states of one Snapdragon 865 SoC during training. The
	// paper's Fig. 11 ratios (0.80x-2.79x the V100's speed at
	// 2.31x-10.23x less energy) imply the 60-SoC fleet averages
	// ~85-105 W, i.e. ~1.4-1.8 W per SoC — sustained-thermal-envelope
	// silicon power, not burst TDP.
	PowerCPUTrainW = 2.5
	PowerNPUTrainW = 1.5
	PowerCommW     = 0.35
	PowerIdleW     = 0.1

	// SoCsPerPCBDefault is the PCB population of the evaluated server
	// (Fig. 2(b): 5 SoCs per board).
	SoCsPerPCBDefault = 5
)

// GPUModel is a datacenter-GPU comparator for §4.4 (Fig. 11). The
// effective throughput is for *small CNNs*, which badly underutilize
// these parts; the paper makes the same point ("data center-level GPUs
// such as the V100 are not primarily designed for training small
// models").
type GPUModel struct {
	Name string
	// EffGflops is effective training throughput on small CNNs.
	EffGflops float64
	// PowerW is sustained board power during training.
	PowerW float64
	// BatchOverhead is the per-mini-batch launch overhead in seconds.
	BatchOverhead float64
}

// V100 and A100 are the comparators used in Fig. 11, with effective
// small-model throughput fitted so 60-SoC SoCFlow lands in the paper's
// 0.80x-2.79x relative-speed band.
var (
	V100 = GPUModel{Name: "V100", EffGflops: 900, PowerW: 250, BatchOverhead: 0.004}
	A100 = GPUModel{Name: "A100", EffGflops: 1500, PowerW: 300, BatchOverhead: 0.003}
)

// SoCGeneration scales the per-SoC silicon. Gen8650 is the Snapdragon
// 865 of the evaluated server; Gen8Gen1 is the newer part compared
// against the A100 in Fig. 11(b)/(d).
type SoCGeneration struct {
	Name string
	// CPUGflops is effective FP32 training throughput.
	CPUGflops float64
	// NPUBoost multiplies each model's NPUSpeedup (newer NPUs widened
	// the gap; §5 cites 18x from 865 to 8gen2).
	NPUBoost float64
}

// Snapdragon generations available to experiments.
var (
	Gen865   = SoCGeneration{Name: "sd865", CPUGflops: SoCCPUGflops, NPUBoost: 1.0}
	Gen8Gen1 = SoCGeneration{Name: "sd8gen1", CPUGflops: 13, NPUBoost: 1.8}
)
