package cluster

import (
	"fmt"

	"socflow/internal/simnet"
)

// Config describes a SoC-Cluster instance.
type Config struct {
	// NumSoCs is the number of SoCs participating (the paper uses 8-60).
	NumSoCs int
	// SoCsPerPCB is the PCB population (default 5, Fig. 2(b)).
	SoCsPerPCB int
	// Generation selects the SoC silicon (default Snapdragon 865).
	Generation SoCGeneration
}

func (c Config) withDefaults() Config {
	if c.SoCsPerPCB == 0 {
		c.SoCsPerPCB = SoCsPerPCBDefault
	}
	if c.Generation.Name == "" {
		c.Generation = Gen865
	}
	return c
}

// SoC is one mobile system-on-chip in the cluster.
type SoC struct {
	// ID is the cluster-wide index.
	ID int
	// PCB is the board this SoC is mounted on.
	PCB int
	// Throttle scales compute throughput in (0, 1]; the DVFS controller
	// lowers it when the chip underclocks (§4.1's underclocking-aware
	// rebalancing reacts to it).
	Throttle float64
}

// Cluster is the modeled server: SoCs, PCBs, and the simnet links
// between them.
type Cluster struct {
	Config Config
	SoCs   []*SoC
	// NumPCBs is the number of boards in use.
	NumPCBs int

	socUp, socDown []*simnet.Link // SoC <-> its PCB NIC
	pcbUp, pcbDown []*simnet.Link // PCB NIC <-> switch
	fabric         *simnet.Link   // switch fabric
}

// New builds a cluster and its network topology.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.NumSoCs <= 0 {
		panic("cluster: NumSoCs must be positive")
	}
	numPCBs := (cfg.NumSoCs + cfg.SoCsPerPCB - 1) / cfg.SoCsPerPCB
	c := &Cluster{
		Config:  cfg,
		NumPCBs: numPCBs,
		fabric:  simnet.NewLink("fabric", FabricBps, LinkLatencySec),
	}
	for i := 0; i < cfg.NumSoCs; i++ {
		c.SoCs = append(c.SoCs, &SoC{ID: i, PCB: i / cfg.SoCsPerPCB, Throttle: 1})
		c.socUp = append(c.socUp, simnet.NewLink(fmt.Sprintf("soc%d.up", i), SoCLinkBps, LinkLatencySec))
		c.socDown = append(c.socDown, simnet.NewLink(fmt.Sprintf("soc%d.down", i), SoCLinkBps, LinkLatencySec))
	}
	for p := 0; p < numPCBs; p++ {
		c.pcbUp = append(c.pcbUp, simnet.NewLink(fmt.Sprintf("pcb%d.up", p), PCBLinkBps, LinkLatencySec))
		c.pcbDown = append(c.pcbDown, simnet.NewLink(fmt.Sprintf("pcb%d.down", p), PCBLinkBps, LinkLatencySec))
	}
	return c
}

// PCBOf returns the PCB index hosting the given SoC.
func (c *Cluster) PCBOf(soc int) int { return c.SoCs[soc].PCB }

// SamePCB reports whether two SoCs share a board.
func (c *Cluster) SamePCB(a, b int) bool { return c.PCBOf(a) == c.PCBOf(b) }

// Path returns the link path a transfer from SoC src to SoC dst
// traverses. Intra-PCB traffic crosses only the two SoC links; inter-PCB
// traffic additionally crosses both PCB uplinks and the switch fabric —
// this is the paper's central bottleneck (§2.3, Observation #2).
func (c *Cluster) Path(src, dst int) []*simnet.Link {
	if src == dst {
		return nil // on-chip
	}
	if c.SamePCB(src, dst) {
		return []*simnet.Link{c.socUp[src], c.socDown[dst]}
	}
	return []*simnet.Link{
		c.socUp[src],
		c.pcbUp[c.PCBOf(src)],
		c.fabric,
		c.pcbDown[c.PCBOf(dst)],
		c.socDown[dst],
	}
}

// Flow builds a simnet flow for a src->dst transfer of the given size
// starting at startAt.
func (c *Cluster) Flow(name string, src, dst int, bytes float64, startAt float64) *simnet.Flow {
	return &simnet.Flow{Name: name, Path: c.Path(src, dst), Bytes: bytes, StartAt: startAt}
}

// SetThrottle sets a SoC's DVFS throttle factor (1 = full speed).
func (c *Cluster) SetThrottle(soc int, f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("cluster: throttle %v out of (0,1]", f))
	}
	c.SoCs[soc].Throttle = f
}
