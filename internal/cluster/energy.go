package cluster

import "fmt"

// EnergyMeter integrates per-SoC energy over the simulated timeline.
// The engine reports how long each SoC spent in each state; the meter
// prices the states with the calibrated powers in params.go (fitted to
// Fig. 9 / Fig. 11).
type EnergyMeter struct {
	joules []float64
}

// NewEnergyMeter creates a meter for n SoCs.
func NewEnergyMeter(n int) *EnergyMeter {
	return &EnergyMeter{joules: make([]float64, n)}
}

// AddCompute charges seconds of training on the given processor.
func (m *EnergyMeter) AddCompute(soc int, seconds float64, proc Processor) {
	switch proc {
	case CPU:
		m.joules[soc] += seconds * PowerCPUTrainW
	case NPU:
		m.joules[soc] += seconds * PowerNPUTrainW
	default:
		panic(fmt.Sprintf("cluster: unknown processor %v", proc))
	}
}

// AddMixedCompute charges a mixed-precision step where both processors
// run for their own durations within the same wall-clock step.
func (m *EnergyMeter) AddMixedCompute(soc int, cpuSeconds, npuSeconds float64) {
	m.joules[soc] += cpuSeconds*PowerCPUTrainW + npuSeconds*PowerNPUTrainW
}

// AddComm charges seconds of network synchronization.
func (m *EnergyMeter) AddComm(soc int, seconds float64) {
	m.joules[soc] += seconds * PowerCommW
}

// AddIdle charges seconds of waiting (e.g. a CG pipeline stall).
func (m *EnergyMeter) AddIdle(soc int, seconds float64) {
	m.joules[soc] += seconds * PowerIdleW
}

// SoC returns one SoC's accumulated joules.
func (m *EnergyMeter) SoC(i int) float64 { return m.joules[i] }

// Total returns the fleet's accumulated joules.
func (m *EnergyMeter) Total() float64 {
	var s float64
	for _, j := range m.joules {
		s += j
	}
	return s
}

// TotalKJ returns the fleet total in kilojoules, the unit of Fig. 9.
func (m *EnergyMeter) TotalKJ() float64 { return m.Total() / 1000 }
