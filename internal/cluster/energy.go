package cluster

import (
	"fmt"

	"socflow/internal/metrics"
)

// EnergyMeter integrates per-SoC energy over the simulated timeline.
// The engine reports how long each SoC spent in each state; the meter
// prices the states with the calibrated powers in params.go (fitted to
// Fig. 9 / Fig. 11). Per-state totals are kept alongside the per-SoC
// sums so Publish can report where the joules went.
type EnergyMeter struct {
	joules                 []float64
	computeJ, commJ, idleJ float64
}

// NewEnergyMeter creates a meter for n SoCs.
func NewEnergyMeter(n int) *EnergyMeter {
	return &EnergyMeter{joules: make([]float64, n)}
}

// AddCompute charges seconds of training on the given processor.
func (m *EnergyMeter) AddCompute(soc int, seconds float64, proc Processor) {
	var j float64
	switch proc {
	case CPU:
		j = seconds * PowerCPUTrainW
	case NPU:
		j = seconds * PowerNPUTrainW
	default:
		panic(fmt.Sprintf("cluster: unknown processor %v", proc))
	}
	m.joules[soc] += j
	m.computeJ += j
}

// AddMixedCompute charges a mixed-precision step where both processors
// run for their own durations within the same wall-clock step.
func (m *EnergyMeter) AddMixedCompute(soc int, cpuSeconds, npuSeconds float64) {
	j := cpuSeconds*PowerCPUTrainW + npuSeconds*PowerNPUTrainW
	m.joules[soc] += j
	m.computeJ += j
}

// AddComm charges seconds of network synchronization.
func (m *EnergyMeter) AddComm(soc int, seconds float64) {
	j := seconds * PowerCommW
	m.joules[soc] += j
	m.commJ += j
}

// AddIdle charges seconds of waiting (e.g. a CG pipeline stall).
func (m *EnergyMeter) AddIdle(soc int, seconds float64) {
	j := seconds * PowerIdleW
	m.joules[soc] += j
	m.idleJ += j
}

// SoC returns one SoC's accumulated joules.
func (m *EnergyMeter) SoC(i int) float64 { return m.joules[i] }

// Total returns the fleet's accumulated joules.
func (m *EnergyMeter) Total() float64 {
	var s float64
	for _, j := range m.joules {
		s += j
	}
	return s
}

// TotalKJ returns the fleet total in kilojoules, the unit of Fig. 9.
func (m *EnergyMeter) TotalKJ() float64 { return m.Total() / 1000 }

// Publish accumulates the meter's totals into the registry's
// sim.energy.* gauges. Safe on a nil registry; gauges add, so several
// runs sharing one registry report fleet-aggregate energy.
func (m *EnergyMeter) Publish(reg *metrics.Registry) {
	reg.Gauge("sim.energy.total.joules").Add(m.Total())
	reg.Gauge("sim.energy.compute.joules").Add(m.computeJ)
	reg.Gauge("sim.energy.comm.joules").Add(m.commJ)
	reg.Gauge("sim.energy.idle.joules").Add(m.idleJ)
}
