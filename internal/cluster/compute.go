package cluster

import (
	"fmt"

	"socflow/internal/nn"
)

// Processor selects which on-SoC engine executes a training step.
type Processor int

// Processors on a mobile SoC that SoCFlow trains with.
const (
	// CPU is FP32 training on the big Kryo cores (MNN backend).
	CPU Processor = iota
	// NPU is INT8 training on the Hexagon DSP (Mandheling backend).
	NPU
)

// String implements fmt.Stringer.
func (p Processor) String() string {
	switch p {
	case CPU:
		return "cpu"
	case NPU:
		return "npu"
	default:
		return fmt.Sprintf("proc(%d)", int(p))
	}
}

// StepTime returns the simulated wall time for one training step of
// `batch` samples of the paper-scale model on the given SoC and
// processor: FLOP cost over effective throughput, plus the fixed
// per-batch dispatch overhead, divided by the SoC's DVFS throttle.
func (c *Cluster) StepTime(soc int, spec *nn.Spec, batch int, proc Processor) float64 {
	if batch <= 0 {
		return 0
	}
	gen := c.Config.Generation
	// Training ≈ 3x forward (forward + weight grad + input grad).
	gflop := 3 * spec.ForwardGFLOPs * float64(batch)
	var t float64
	switch proc {
	case CPU:
		t = gflop/gen.CPUGflops + CPUBatchOverhead
	case NPU:
		speedup := spec.NPUSpeedup * gen.NPUBoost
		t = gflop/(gen.CPUGflops*speedup) + NPUBatchOverhead
	default:
		panic(fmt.Sprintf("cluster: unknown processor %v", proc))
	}
	return t / c.SoCs[soc].Throttle
}

// SplitStepTime returns the wall time of a mixed-precision step where
// cpuBatch samples run on the CPU and npuBatch on the NPU in parallel
// (§3.2): the step completes when the slower side does.
func (c *Cluster) SplitStepTime(soc int, spec *nn.Spec, cpuBatch, npuBatch int) float64 {
	ct := c.StepTime(soc, spec, cpuBatch, CPU)
	nt := c.StepTime(soc, spec, npuBatch, NPU)
	if ct > nt {
		return ct
	}
	return nt
}

// ComputeRatio returns β, the fraction of each mini-batch the NPU
// should take so that neither processor idles (§3.2). With T_cpu and
// T_npu the profiled times for the same batch, the idle-free split is
// β = T_cpu / (T_cpu + T_npu): the faster processor takes
// proportionally more data. (Eq. 6 in the paper prints the mirrored
// ratio, which would starve the NPU; the surrounding text — "to avoid
// processor idleness" — and Fig. 14 imply this balanced form.)
func (c *Cluster) ComputeRatio(soc int, spec *nn.Spec, profileBatch int) float64 {
	tc := c.StepTime(soc, spec, profileBatch, CPU)
	tn := c.StepTime(soc, spec, profileBatch, NPU)
	return tc / (tc + tn)
}

// GPUStepTime returns the per-step time of the comparator GPU on the
// paper-scale model.
func (g GPUModel) GPUStepTime(spec *nn.Spec, batch int) float64 {
	return 3*spec.ForwardGFLOPs*float64(batch)/g.EffGflops + g.BatchOverhead
}

// TrainTime returns the comparator GPU's end-to-end training time for
// the given dataset size, epochs, and batch size.
func (g GPUModel) TrainTime(spec *nn.Spec, samples, epochs, batch int) float64 {
	steps := (samples + batch - 1) / batch * epochs
	return float64(steps) * g.GPUStepTime(spec, batch)
}

// Energy returns the comparator GPU's training energy in joules.
func (g GPUModel) Energy(trainSeconds float64) float64 {
	return trainSeconds * g.PowerW
}
