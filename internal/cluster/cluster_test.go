package cluster

import (
	"math"
	"testing"

	"socflow/internal/nn"
	"socflow/internal/simnet"
)

func TestNewClusterLayout(t *testing.T) {
	c := New(Config{NumSoCs: 12})
	if c.NumPCBs != 3 {
		t.Fatalf("12 SoCs / 5 per PCB = %d PCBs, want 3", c.NumPCBs)
	}
	if c.PCBOf(0) != 0 || c.PCBOf(4) != 0 || c.PCBOf(5) != 1 || c.PCBOf(11) != 2 {
		t.Fatal("PCB assignment wrong")
	}
	if !c.SamePCB(0, 4) || c.SamePCB(4, 5) {
		t.Fatal("SamePCB wrong")
	}
}

func TestNewClusterValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero SoCs must panic")
		}
	}()
	New(Config{})
}

func TestPathIntraVsInterPCB(t *testing.T) {
	c := New(Config{NumSoCs: 10})
	if got := c.Path(0, 0); got != nil {
		t.Fatalf("self path = %v, want nil", got)
	}
	intra := c.Path(0, 1)
	if len(intra) != 2 {
		t.Fatalf("intra-PCB path has %d links, want 2", len(intra))
	}
	inter := c.Path(0, 7)
	if len(inter) != 5 {
		t.Fatalf("inter-PCB path has %d links, want 5", len(inter))
	}
}

func TestInterPCBSlowerThanIntra(t *testing.T) {
	c := New(Config{NumSoCs: 10})
	const bytes = 42e6
	intra := simnet.TransferTime(bytes, c.Path(0, 1)...)
	inter := simnet.TransferTime(bytes, c.Path(0, 7)...)
	if inter <= intra {
		t.Fatalf("inter-PCB (%v) must be slower than intra-PCB (%v)", inter, intra)
	}
}

// Many inter-PCB flows from one board must contend on the PCB uplink —
// the core phenomenon of Observation #2.
func TestPCBUplinkContention(t *testing.T) {
	c := New(Config{NumSoCs: 10})
	one := simnet.Simulate([]*simnet.Flow{c.Flow("a", 0, 5, 10e6, 0)})
	var flows []*simnet.Flow
	for i := 0; i < 5; i++ {
		flows = append(flows, c.Flow("f", i, 5+i, 10e6, 0))
	}
	five := simnet.Simulate(flows)
	if five < 4.5*one {
		t.Fatalf("5 concurrent inter-PCB flows (%v) should be ~5x one flow (%v): PCB uplink must serialize them", five, one)
	}
}

func TestStepTimeCalibration(t *testing.T) {
	// The headline calibration: VGG-11/CIFAR-10 on one 865 CPU ≈ 29.1 h
	// (Fig. 4(a)), with 50k samples, 100 epochs, batch 64.
	c := New(Config{NumSoCs: 1})
	spec := nn.MustSpec("vgg11")
	batch := 64
	stepsPerEpoch := 50000 / batch
	total := float64(stepsPerEpoch*spec.EpochsToConverge) * c.StepTime(0, spec, batch, CPU)
	hours := total / 3600
	if hours < 26 || hours > 33 {
		t.Fatalf("VGG-11 CPU training = %.1f h, want ≈29.1 h", hours)
	}
	// NPU INT8 ≈ 7.5 h.
	totalNPU := float64(stepsPerEpoch*spec.EpochsToConverge) * c.StepTime(0, spec, batch, NPU)
	if h := totalNPU / 3600; h < 6 || h > 10 {
		t.Fatalf("VGG-11 NPU training = %.1f h, want ≈7.5 h", h)
	}
}

func TestStepTimeResNetCalibration(t *testing.T) {
	// ResNet-18: ≈233 h CPU, ≈36 h NPU (Fig. 4(a)).
	c := New(Config{NumSoCs: 1})
	spec := nn.MustSpec("resnet18")
	steps := 50000 / 64 * spec.EpochsToConverge
	cpu := float64(steps) * c.StepTime(0, spec, 64, CPU) / 3600
	npu := float64(steps) * c.StepTime(0, spec, 64, NPU) / 3600
	if cpu < 200 || cpu > 260 {
		t.Fatalf("ResNet-18 CPU = %.0f h, want ≈233 h", cpu)
	}
	if npu < 28 || npu > 45 {
		t.Fatalf("ResNet-18 NPU = %.0f h, want ≈36 h", npu)
	}
}

func TestStepTimeThrottle(t *testing.T) {
	c := New(Config{NumSoCs: 2})
	spec := nn.MustSpec("vgg11")
	full := c.StepTime(0, spec, 64, CPU)
	c.SetThrottle(0, 0.5)
	half := c.StepTime(0, spec, 64, CPU)
	if math.Abs(half-2*full) > 1e-9 {
		t.Fatalf("throttle 0.5 should double step time: %v vs %v", half, full)
	}
}

func TestSetThrottleValidates(t *testing.T) {
	c := New(Config{NumSoCs: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("bad throttle must panic")
		}
	}()
	c.SetThrottle(0, 0)
}

func TestSplitStepTimeIsMax(t *testing.T) {
	c := New(Config{NumSoCs: 1})
	spec := nn.MustSpec("vgg11")
	ct := c.StepTime(0, spec, 32, CPU)
	nt := c.StepTime(0, spec, 32, NPU)
	if got := c.SplitStepTime(0, spec, 32, 32); got != math.Max(ct, nt) {
		t.Fatalf("SplitStepTime = %v, want max(%v,%v)", got, ct, nt)
	}
	if got := c.SplitStepTime(0, spec, 0, 32); got != nt {
		t.Fatalf("empty CPU side should cost only NPU time")
	}
}

func TestComputeRatioFavorsNPU(t *testing.T) {
	c := New(Config{NumSoCs: 1})
	beta := c.ComputeRatio(0, nn.MustSpec("vgg11"), 64)
	if beta <= 0.5 || beta >= 1 {
		t.Fatalf("β = %v; the ~4x-faster NPU should get most of the batch", beta)
	}
}

func TestZeroBatchStepTime(t *testing.T) {
	c := New(Config{NumSoCs: 1})
	if got := c.StepTime(0, nn.MustSpec("vgg11"), 0, CPU); got != 0 {
		t.Fatalf("zero batch step time = %v", got)
	}
}

func TestGPUModels(t *testing.T) {
	spec := nn.MustSpec("vgg11")
	tV := V100.TrainTime(spec, 50000, spec.EpochsToConverge, 128)
	tA := A100.TrainTime(spec, 50000, spec.EpochsToConverge, 128)
	if tA >= tV {
		t.Fatalf("A100 (%v) should beat V100 (%v)", tA, tV)
	}
	if e := V100.Energy(3600); e != 250*3600 {
		t.Fatalf("V100 energy = %v", e)
	}
	// V100 should train VGG-11 in sub-hour to low-hours territory
	// (small model, big GPU).
	if h := tV / 3600; h < 0.1 || h > 3 {
		t.Fatalf("V100 VGG-11 time = %.2f h, implausible", h)
	}
}

func TestEnergyMeterAccounting(t *testing.T) {
	m := NewEnergyMeter(2)
	m.AddCompute(0, 10, CPU)
	m.AddCompute(1, 10, NPU)
	m.AddComm(0, 5)
	m.AddIdle(1, 5)
	wantSoC0 := 10*PowerCPUTrainW + 5*PowerCommW
	wantSoC1 := 10*PowerNPUTrainW + 5*PowerIdleW
	if math.Abs(m.SoC(0)-wantSoC0) > 1e-9 || math.Abs(m.SoC(1)-wantSoC1) > 1e-9 {
		t.Fatalf("meter = %v/%v, want %v/%v", m.SoC(0), m.SoC(1), wantSoC0, wantSoC1)
	}
	if math.Abs(m.Total()-(wantSoC0+wantSoC1)) > 1e-9 {
		t.Fatalf("total = %v", m.Total())
	}
	if math.Abs(m.TotalKJ()*1000-m.Total()) > 1e-9 {
		t.Fatal("TotalKJ inconsistent")
	}
	m2 := NewEnergyMeter(1)
	m2.AddMixedCompute(0, 2, 3)
	if math.Abs(m2.SoC(0)-(2*PowerCPUTrainW+3*PowerNPUTrainW)) > 1e-9 {
		t.Fatal("mixed compute accounting wrong")
	}
}

func TestTidalTraceShape(t *testing.T) {
	tr := DefaultTidalTrace()
	peak := tr.BusyFraction(14.5)
	trough := tr.BusyFraction(2.5)
	if peak < 0.8 || trough > 0.1 {
		t.Fatalf("peak=%v trough=%v", peak, trough)
	}
	// Fig. 3 / §2.2: afternoon at least 10x the night.
	if peak/trough < 10 {
		t.Fatalf("peak/trough = %v, want >= 10 (tidal phenomenon)", peak/trough)
	}
	profile := tr.HourlyProfile()
	if len(profile) != 24 {
		t.Fatalf("profile length %d", len(profile))
	}
	for h, v := range profile {
		if v < 0 || v > 1 {
			t.Fatalf("profile[%d] = %v out of [0,1]", h, v)
		}
	}
}

func TestIdleWindowCoversNight(t *testing.T) {
	tr := DefaultTidalTrace()
	start, hours := tr.IdleWindow(0.2)
	if hours < 4 {
		t.Fatalf("idle window only %.1f h, the paper schedules ~4 h jobs nightly", hours)
	}
	// The window must cover deep night (3:00 is inside it).
	end := start + hours
	covers := (start <= 3 && 3 <= end) || (start <= 27 && 27 <= end)
	if !covers {
		t.Fatalf("idle window [%v, %v) does not cover 3:00", start, end)
	}
}

func TestBusyScheduleMatchesProfile(t *testing.T) {
	tr := DefaultTidalTrace()
	sched := tr.BusySchedule(500, 7)
	if len(sched) != 500 || len(sched[0]) != 24 {
		t.Fatalf("schedule shape %dx%d", len(sched), len(sched[0]))
	}
	// At 14:00 (peak) most SoCs busy; at 3:00 (trough) few.
	busyAt := func(h int) float64 {
		n := 0
		for _, s := range sched {
			if s[h] {
				n++
			}
		}
		return float64(n) / float64(len(sched))
	}
	if busyAt(14) < 0.7 {
		t.Fatalf("peak busy fraction = %v", busyAt(14))
	}
	if busyAt(3) > 0.15 {
		t.Fatalf("trough busy fraction = %v", busyAt(3))
	}
}

func TestGenerationsDiffer(t *testing.T) {
	c865 := New(Config{NumSoCs: 1, Generation: Gen865})
	c8g1 := New(Config{NumSoCs: 1, Generation: Gen8Gen1})
	spec := nn.MustSpec("resnet18")
	if c8g1.StepTime(0, spec, 64, NPU) >= c865.StepTime(0, spec, 64, NPU) {
		t.Fatal("8gen1 NPU should be faster than 865")
	}
}

func TestThermalTraceShape(t *testing.T) {
	tr := ThermalTrace(10, 5, 0.5, 0.5, 3)
	if len(tr) != 5 || len(tr[0]) != 10 {
		t.Fatalf("trace shape %dx%d", len(tr), len(tr[0]))
	}
	throttled, full := 0, 0
	for _, epoch := range tr {
		for _, f := range epoch {
			if f <= 0 || f > 1 {
				t.Fatalf("throttle factor %v out of (0,1]", f)
			}
			if f == 1 {
				full++
			} else {
				if f < 0.5 {
					t.Fatalf("factor %v below minFactor", f)
				}
				throttled++
			}
		}
	}
	if throttled == 0 || full == 0 {
		t.Fatalf("degenerate trace: %d throttled, %d full", throttled, full)
	}
}

func TestThermalTraceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad minFactor must panic")
		}
	}()
	ThermalTrace(2, 2, 0.5, 0, 1)
}

func TestPreemptionEventsDeterministicAndTidal(t *testing.T) {
	tr := DefaultTidalTrace()
	a := tr.PreemptionEvents(16, 8, 14, 0.5, 3)
	b := tr.PreemptionEvents(16, 8, 14, 0.5, 3)
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	// Episodes per SoC must be well-formed: chronological, non-
	// overlapping, and only the last may be open-ended (Return -1).
	last := map[int]int{} // SoC -> end of its previous episode
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
		ev := a[i]
		if ev.SoC < 0 || ev.SoC >= 16 || ev.Epoch < 0 || ev.Epoch >= 8 {
			t.Fatalf("event out of range: %+v", ev)
		}
		if ev.Return != -1 && ev.Return <= ev.Epoch {
			t.Fatalf("episode ends before it starts: %+v", ev)
		}
		if end, ok := last[ev.SoC]; ok {
			if end == -1 {
				t.Fatalf("SoC %d preempted again after an open-ended episode: %+v", ev.SoC, ev)
			}
			if ev.Epoch < end {
				t.Fatalf("SoC %d episodes overlap: new %+v, previous end %d", ev.SoC, ev, end)
			}
		}
		last[ev.SoC] = ev.Return
	}
	// Afternoon peak must reclaim far more SoCs than the nightly trough.
	peak := len(tr.PreemptionEvents(64, 8, 14, 0.25, 3))
	night := len(tr.PreemptionEvents(64, 8, 4, 0.25, 3))
	if peak <= night {
		t.Fatalf("peak-hour session lost %d SoCs, night session %d; tidal shape missing", peak, night)
	}
}

// The degenerate trace shapes pin the episode semantics exactly.
func TestPreemptionEventsKnownSchedules(t *testing.T) {
	// Always busy: every SoC is reclaimed at epoch 0 and never returned.
	full := TidalTrace{PeakBusy: 1, TroughBusy: 1}.PreemptionEvents(5, 4, 0, 1, 7)
	if len(full) != 5 {
		t.Fatalf("always-busy trace emitted %d events, want 5", len(full))
	}
	for i, ev := range full {
		if ev != (PreemptionEvent{SoC: i, Epoch: 0, Return: -1}) {
			t.Fatalf("always-busy event %d = %+v", i, ev)
		}
	}
	// Never busy: nothing is ever reclaimed.
	if evs := (TidalTrace{}).PreemptionEvents(5, 4, 0, 1, 7); len(evs) != 0 {
		t.Fatalf("idle trace emitted events: %+v", evs)
	}
	// A session crossing from peak into trough must hand SoCs back:
	// some episode ends before the session does.
	tr := DefaultTidalTrace()
	evs := tr.PreemptionEvents(32, 16, 14, 0.75, 11)
	returned := 0
	for _, ev := range evs {
		if ev.Return >= 0 {
			returned++
		}
	}
	if returned == 0 {
		t.Fatalf("peak-to-trough session returned no SoCs across %d episodes", len(evs))
	}
}
