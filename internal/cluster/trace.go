package cluster

import (
	"math"

	"socflow/internal/tensor"
)

// TidalTrace models the diurnal utilization pattern of deployed
// SoC-Clusters (§2.2, Fig. 3): user-triggered workloads (cloud gaming,
// live streaming) peak in the afternoon and nearly vanish at night —
// "the number of active game users from 11:00 to 17:00 is more than
// one order of magnitude higher than 3:00 to 8:00".
type TidalTrace struct {
	// PeakBusy is the busy-SoC fraction at the daily peak (~0.85).
	PeakBusy float64
	// TroughBusy is the fraction at the nightly trough (~0.05).
	TroughBusy float64
}

// DefaultTidalTrace reproduces the Fig. 3 shape.
func DefaultTidalTrace() TidalTrace {
	return TidalTrace{PeakBusy: 0.85, TroughBusy: 0.05}
}

// BusyFraction returns the expected fraction of busy SoCs at the given
// hour of day in [0, 24). The shape is a raised cosine centered at
// 14:30 (mid-afternoon peak) with a flattened nightly trough.
func (tr TidalTrace) BusyFraction(hour float64) float64 {
	hour = math.Mod(hour, 24)
	if hour < 0 {
		hour += 24
	}
	// Phase: 0 at 14.5h (peak), pi at 2.5h (trough).
	phase := (hour - 14.5) / 24 * 2 * math.Pi
	c := (math.Cos(phase) + 1) / 2 // 1 at peak, 0 at trough
	// Sharpen so the trough is wide and flat like the measured trace.
	c = math.Pow(c, 1.6)
	return tr.TroughBusy + (tr.PeakBusy-tr.TroughBusy)*c
}

// HourlyProfile returns the 24 per-hour busy fractions, the series
// plotted in Fig. 3.
func (tr TidalTrace) HourlyProfile() []float64 {
	out := make([]float64, 24)
	for h := range out {
		out[h] = tr.BusyFraction(float64(h) + 0.5)
	}
	return out
}

// IdleWindow returns the longest contiguous window (startHour, hours)
// in which the expected busy fraction stays below threshold — the
// nightly slot SoCFlow schedules training into ("a typical idle time
// frame of a day (~4hrs)").
func (tr TidalTrace) IdleWindow(threshold float64) (startHour, hours float64) {
	const step = 0.1
	bestStart, bestLen := 0.0, 0.0
	curStart, curLen := -1.0, 0.0
	// Scan two days so a window wrapping midnight is found intact.
	for t := 0.0; t < 48; t += step {
		if tr.BusyFraction(t) < threshold {
			if curStart < 0 {
				curStart, curLen = t, 0
			}
			curLen += step
			if curLen > bestLen {
				bestStart, bestLen = curStart, curLen
			}
		} else {
			curStart = -1
		}
		if curLen >= 24 {
			break // always idle
		}
	}
	if bestLen > 24 {
		bestLen = 24
	}
	return math.Mod(bestStart, 24), bestLen
}

// BusySchedule samples, for each of n SoCs, whether it is busy with
// user workloads in each of the 24 hours, matching the expected
// per-hour busy fraction. It is the input to the co-location /
// preemption experiments.
func (tr TidalTrace) BusySchedule(n int, seed uint64) [][]bool {
	r := tensor.NewRNG(seed)
	out := make([][]bool, n)
	profile := tr.HourlyProfile()
	for i := range out {
		out[i] = make([]bool, 24)
		for h := range out[i] {
			out[i][h] = r.Float64() < profile[h]
		}
	}
	return out
}

// PreemptionEvent records one preemption episode: user traffic
// reclaims a SoC at the start of epoch Epoch, and hands it back at the
// start of epoch Return — the failure-and-recovery cycle the
// co-location story must absorb (§2.2: training borrows idle SoCs,
// yields them the moment user workloads arrive, and gets them back
// when the traffic recedes). Return is -1 when the SoC never comes
// back within the session.
type PreemptionEvent struct {
	SoC, Epoch int
	Return     int
}

// PreemptionEvents samples the preemption episodes of a training
// session that starts at startHour and advances epochHours of wall
// clock per epoch, following the tidal busy profile: a session that
// strays out of the nightly trough loses SoCs at the rate the trace
// predicts, and a session that runs back into the trough gets them
// returned. Each epoch a present SoC is reclaimed with the hour's busy
// probability, and an absent SoC is handed back with the idle
// probability, so one SoC can contribute several leave/return episodes.
// Episodes are ordered by departure epoch (SoC index breaking ties),
// deterministic in seed; feed the result to a transport.FaultPlan —
// and the Return epochs to the elastic runtime's rejoin schedule — to
// replay it against the distributed runtime.
func (tr TidalTrace) PreemptionEvents(n, epochs int, startHour, epochHours float64, seed uint64) []PreemptionEvent {
	r := tensor.NewRNG(seed)
	open := make([]int, n) // 1+index into out of the SoC's open episode; 0 = present
	var out []PreemptionEvent
	for e := 0; e < epochs; e++ {
		busy := tr.BusyFraction(startHour + float64(e)*epochHours)
		for s := 0; s < n; s++ {
			draw := r.Float64()
			if open[s] == 0 {
				if draw < busy {
					out = append(out, PreemptionEvent{SoC: s, Epoch: e, Return: -1})
					open[s] = len(out)
				}
			} else if draw < 1-busy {
				out[open[s]-1].Return = e
				open[s] = 0
			}
		}
	}
	return out
}

// ThermalTrace samples per-SoC DVFS throttle factors for a training
// session. Sustained training pushes mobile SoCs against their thermal
// envelope; the DVFS governor underclocks hot chips, which is what
// §4.1's underclocking-aware workload rebalancing reacts to. Each SoC
// independently throttles with probability throttleProb per epoch, to
// a factor uniform in [minFactor, 1).
func ThermalTrace(n, epochs int, throttleProb, minFactor float64, seed uint64) [][]float64 {
	if minFactor <= 0 || minFactor > 1 {
		panic("cluster: ThermalTrace minFactor out of (0,1]")
	}
	r := tensor.NewRNG(seed)
	out := make([][]float64, epochs)
	for e := range out {
		out[e] = make([]float64, n)
		for s := range out[e] {
			if r.Float64() < throttleProb {
				out[e][s] = minFactor + (1-minFactor)*r.Float64()
			} else {
				out[e][s] = 1
			}
		}
	}
	return out
}
