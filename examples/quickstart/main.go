// Quickstart: train a model on a simulated 32-SoC cluster with SoCFlow
// and compare it against the Ring-AllReduce baseline, using only the
// public facade API.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"socflow"
)

func main() {
	ctx := context.Background()
	base := socflow.Config{
		JobSpec: socflow.JobSpec{
			Model:   "vgg11",
			Dataset: "cifar10",
			Epochs:  8,
		},
		NumSoCs: 32,
		Groups:  8,
	}

	fmt.Println("training VGG-11/CIFAR-10 on a simulated 32-SoC cluster...")
	ours, err := socflow.Run(ctx, base, socflow.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}

	ring := base
	ring.Strategy = "ring"
	baseline, err := socflow.Run(ctx, ring, socflow.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %10s %12s %10s\n", "strategy", "best acc", "epoch time", "energy")
	for _, r := range []*socflow.Report{ours, baseline} {
		fmt.Printf("%-10s %9.1f%% %10.1f s %8.1f kJ\n",
			r.Strategy, 100*r.BestAccuracy, r.MeanEpochSeconds, r.EnergyKJ)
	}
	fmt.Printf("\nSoCFlow trains each epoch %.1fx faster than Ring-AllReduce\n",
		baseline.MeanEpochSeconds/ours.MeanEpochSeconds)
	fmt.Printf("estimated paper-scale convergence: SoCFlow %.2f h vs RING %.2f h (idle window ≈ 4 h)\n",
		ours.EstimatedHoursToConverge, baseline.EstimatedHoursToConverge)
}
