// Colocation: the scenario motivating the whole paper (Fig. 1) — the
// SoC-Cluster's day job is serving user requests, and training harvests
// whatever the request tide leaves idle. Both workloads run on ONE
// control plane: an SLO-batched serving job resizes with the diurnal
// tide, and the scheduler parks the preemptible training job whenever
// serving's footprint leaves too few SoCs, resuming it from its park
// checkpoint as the tide ebbs.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"socflow"
)

const (
	totalSoCs = 12
	trainSoCs = 10
)

type summary struct {
	Parks, Resumes int
	TrainAccuracy  float64
	Attainment     float64
	Requests       int
}

func main() {
	if _, err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) (summary, error) {
	ctx := context.Background()
	srv := socflow.NewServer(socflow.ServerConfig{TotalSoCs: totalSoCs})
	defer srv.Close()
	cl := srv.Client()

	// The training tenant claims most of the cluster. SoCFlow-strategy
	// jobs are preemptible: the scheduler may park them at an epoch
	// boundary (checkpointing weights and BN state) and resume later.
	th, err := cl.Submit(ctx, socflow.Config{
		JobSpec: socflow.JobSpec{
			Model: "lenet5", Dataset: "fmnist",
			Epochs: 12, TrainSamples: 960, ValSamples: 128, Seed: 3,
		},
		NumSoCs: trainSoCs,
		Groups:  5,
	}, socflow.WithTenant("lab"))
	if err != nil {
		return summary{}, err
	}
	if err := waitState(ctx, th, socflow.JobRunning); err != nil {
		return summary{}, err
	}
	fmt.Fprintf(w, "training started on %d of %d SoCs — now the evening request tide arrives\n\n", trainSoCs, totalSoCs)

	// The serving tenant opens its window at 21:00, when the tide is
	// still high: its footprint does not fit beside training, so the
	// scheduler parks training to admit the higher-priority tenant.
	// Each simulated hour the HourEnd hook waits for the scheduler to
	// settle training into the state the new footprint implies, then
	// logs the row — serving resizing down the night, training resumed
	// underneath it.
	cfg := socflow.ServeConfig{
		Model: "lenet5", Dataset: "fmnist",
		Stages: 2, MaxBatch: 8, MaxQueueDelay: 0.02,
		SLO: 0.5, PeakRPS: 2,
		StartHour: 21, Hours: 12,
		NumSoCs: totalSoCs, Samples: 96, Seed: 3,
	}
	cfg.HourEnd = func(s socflow.ServeHourStat) {
		st := settle(ctx, th, s.SoCs+trainSoCs > totalSoCs)
		fmt.Fprintf(w, "  %02.0f:00  busy %3.0f%%  serving %2d SoCs  req %4d  slo %5.1f%%  training %s (%d/12 epochs)\n",
			s.Hour, 100*s.Busy, s.SoCs, s.Requests, 100*s.Attainment, st.State, st.EpochsDone)
	}
	sh, err := cl.Serve(ctx, cfg, socflow.WithTenant("web"), socflow.WithPriority(9))
	if err != nil {
		return summary{}, err
	}
	srep, err := sh.Wait(ctx)
	if err != nil {
		return summary{}, err
	}
	trep, err := th.Wait(ctx)
	if err != nil {
		return summary{}, err
	}
	st, err := th.Status(ctx)
	if err != nil {
		return summary{}, err
	}

	fmt.Fprintf(w, "\nserving: %d requests, %.2f%% SLO attainment, p99 %.4fs\n",
		srep.Requests, 100*srep.Attainment, srep.P99Seconds)
	fmt.Fprintf(w, "training: best accuracy %.1f%% after %d parks and %d resumes — training survived co-location\n",
		100*trep.BestAccuracy, st.Parks, st.Resumes)
	return summary{
		Parks: st.Parks, Resumes: st.Resumes,
		TrainAccuracy: trep.BestAccuracy,
		Attainment:    srep.Attainment,
		Requests:      srep.Requests,
	}, nil
}

// settle polls the training job until the scheduler has reacted to the
// serving footprint: parked when the footprint conflicts, running when
// it fits, or any terminal state.
func settle(ctx context.Context, th *socflow.JobHandle, conflict bool) socflow.JobStatus {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := th.Status(ctx)
		if err != nil {
			return st
		}
		settled := st.State.Terminal() ||
			(conflict && st.State == socflow.JobParked) ||
			(!conflict && st.State == socflow.JobRunning)
		if settled || time.Now().After(deadline) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitState(ctx context.Context, th *socflow.JobHandle, want socflow.JobState) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := th.Status(ctx)
		if err != nil {
			return err
		}
		if st.State == want {
			return nil
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			return fmt.Errorf("training is %s, want %s", st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
