// Colocation: the scenario motivating the whole paper (Fig. 1) —
// harvest idle SoC cycles for DNN training while user-triggered cloud
// gaming keeps priority. A tidal busy schedule is sampled, training is
// scheduled into the nightly idle window, and when user load arrives on
// a logical group's SoCs, that group alone is checkpointed and
// preempted while the rest keep training.
package main

import (
	"context"

	"fmt"
	"log"

	"socflow/internal/cluster"
	"socflow/internal/core"
	"socflow/internal/dataset"
	"socflow/internal/nn"
)

func main() {
	const (
		numSoCs = 20
		groups  = 4
	)
	clu := cluster.New(cluster.Config{NumSoCs: numSoCs})
	trace := cluster.DefaultTidalTrace()

	// Find the nightly idle window and sample the user workload.
	start, hours := trace.IdleWindow(0.3)
	fmt.Printf("idle window: %02.0f:00 for %.1f h — scheduling training there\n", start, hours)
	sched := trace.BusySchedule(numSoCs, 7)

	// Map the fleet and derive a preemption plan: one epoch per hour of
	// the window; a group sits out any hour in which most of its SoCs
	// serve users.
	mapping := core.IntegrityGreedyMap(numSoCs, groups, clu.Config.SoCsPerPCB)
	epochs := int(hours)
	if epochs > 10 {
		epochs = 10
	}
	plan := core.PlanFromTrace(mapping, sched, int(start), epochs)
	preempted := 0
	for _, gs := range plan.ByEpoch {
		preempted += len(gs)
	}
	fmt.Printf("plan: %d epochs, %d group-preemptions expected\n", epochs, preempted)

	// The training job itself.
	prof := dataset.MustProfile("fmnist")
	pool := prof.Generate(dataset.GenOptions{Samples: 720, Seed: 3})
	train, val := pool.Split(0.85)
	job := &core.Job{
		Spec:         nn.MustSpec("lenet5"),
		Train:        train,
		Val:          val,
		PaperSamples: prof.PaperTrainN,
		GlobalBatch:  16,
		PaperBatch:   64,
		LR:           0.02,
		Momentum:     0.9,
		Epochs:       epochs,
		Seed:         3,
	}
	res, err := (&core.SoCFlow{NumGroups: groups, Preempt: plan}).Run(context.Background(), job, clu)
	if err != nil {
		log.Fatal(err)
	}

	for e, acc := range res.EpochAccuracies {
		hour := (int(start) + e) % 24
		out := len(plan.ByEpoch[e])
		fmt.Printf("  %02d:00  val-acc %5.1f%%  (%d/%d groups training)\n",
			hour, 100*acc, groups-out, groups)
	}
	fmt.Printf("\nserved %d preemptions; best accuracy %.1f%% — training survived co-location\n",
		res.Preemptions, 100*res.BestAccuracy)
	fmt.Printf("simulated training time: %.0f s inside a %.1f h window\n", res.SimSeconds, hours)
}
