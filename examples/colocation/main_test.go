package main

import (
	"io"
	"testing"
)

// TestColocationExample runs the example end to end: serving must hold
// its SLO through the window, the tide must park training at least
// once, and training must resume and still converge.
func TestColocationExample(t *testing.T) {
	s, err := run(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parks < 1 || s.Resumes < 1 {
		t.Fatalf("parks %d, resumes %d: the tide never displaced training", s.Parks, s.Resumes)
	}
	if s.Attainment < 0.99 {
		t.Fatalf("SLO attainment %.4f, want >= 0.99", s.Attainment)
	}
	if s.Requests == 0 {
		t.Fatal("serving saw no requests")
	}
	if s.TrainAccuracy < 0.5 {
		t.Fatalf("training accuracy %.3f: park/resume broke convergence", s.TrainAccuracy)
	}
}
