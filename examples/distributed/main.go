// Distributed: run SoCFlow's actual wire protocol — one goroutine per
// SoC, chunked Ring-AllReduce inside logical groups, a leader ring
// across groups — over real loopback TCP connections, exactly as the
// paper's prototype runs it over the SoC-Cluster's network.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"socflow/internal/core"
	"socflow/internal/dataset"
	"socflow/internal/nn"
	"socflow/internal/runtime"
	"socflow/internal/transport"
)

func main() {
	const (
		numSoCs = 10
		groups  = 2
	)
	// Plan the topology the way the global scheduler would.
	mapping := core.IntegrityGreedyMap(numSoCs, groups, 5)
	fmt.Printf("topology: %d SoCs in %d logical groups: %v\n", numSoCs, groups, mapping.Groups)

	// A real TCP mesh on loopback: one connection per SoC pair.
	mesh, err := transport.NewTCPMesh(numSoCs)
	if err != nil {
		log.Fatal(err)
	}
	defer mesh.Close()

	prof := dataset.MustProfile("fmnist")
	pool := prof.Generate(dataset.GenOptions{Samples: 700, Seed: 8})
	train, val := pool.Split(0.85)

	start := time.Now()
	res, err := runtime.RunDistributed(context.Background(), mesh, nn.MustSpec("lenet5"), train, val, runtime.DistConfig{
		JobSpec: core.JobSpec{Epochs: 8, GlobalBatch: 20, LR: 0.03, Momentum: 0.9, Seed: 8},
		Groups:  runtime.GroupsFromMapping(mapping),
	})
	if err != nil {
		log.Fatal(err)
	}

	for e, acc := range res.EpochAccuracies {
		fmt.Printf("  epoch %d  val-acc %5.1f%%\n", e+1, 100*acc)
	}
	fmt.Printf("\n%d workers, %d TCP links, wall time %v\n",
		numSoCs, numSoCs*(numSoCs-1)/2, time.Since(start).Round(time.Millisecond))
	fmt.Println("every gradient travelled the ring; every epoch the group leaders")
	fmt.Println("aggregated weights and shards reshuffled across groups (§3.1).")
}
