// Transfer: the paper's ResNet50-Finetune scenario (Table 2) — a model
// pre-trained on CINIC-10 is fine-tuned on CIFAR-10 with SoCFlow. The
// federated baselines do not converge on this workload (Table 3 marks
// them "x"); SoCFlow's reshuffled group-wise training does.
package main

import (
	"context"

	"fmt"
	"log"

	"socflow/internal/cluster"
	"socflow/internal/core"
	"socflow/internal/dataset"
	"socflow/internal/nn"
	"socflow/internal/tensor"
)

func main() {
	spec := nn.MustSpec("resnet50")

	// Phase 1: "pre-training" on the CINIC-10 stand-in (same 10
	// classes, more images — §4.1).
	pre := dataset.MustProfile("cinic10").Generate(dataset.GenOptions{Samples: 800, Seed: 21})
	root := tensor.NewRNG(21)
	pretrained := spec.BuildMicro(root, pre.Channels(), pre.ImageSize(), pre.Classes)
	opt := nn.NewSGD(0.02, 0.9, 0)
	it := dataset.NewBatchIterator(pre, 32, 1)
	for e := 0; e < 6; e++ {
		for i := 0; i < it.BatchesPerEpoch(); i++ {
			x, labels := it.Next()
			pretrained.ZeroGrad()
			logits := pretrained.Forward(x, true)
			_, g := nn.SoftmaxCrossEntropy(logits, labels)
			pretrained.Backward(g)
			opt.Step(pretrained.Params())
		}
	}
	fmt.Println("pre-trained ResNet-50 stand-in on the CINIC-10 substitute")

	// Phase 2: distributed fine-tuning on CIFAR-10 with SoCFlow. The
	// fine-tune starts from the pre-trained weights by seeding every
	// group's reference model.
	pool := dataset.MustProfile("cifar10").Generate(dataset.GenOptions{Samples: 840, Seed: 22})
	train, val := pool.Split(0.85)
	job := &core.Job{
		Spec:         spec,
		Train:        train,
		Val:          val,
		PaperSamples: dataset.MustProfile("cifar10").PaperTrainN,
		GlobalBatch:  12,
		PaperBatch:   64,
		LR:           0.01, // fine-tuning rate
		Momentum:     0.9,
		Epochs:       6,
		Seed:         22,
	}

	clu := cluster.New(cluster.Config{NumSoCs: 32})

	// Scratch baseline for contrast.
	scratch, err := (&core.SoCFlow{NumGroups: 8, Mixed: core.MixedOff}).Run(context.Background(), job, clu)
	if err != nil {
		log.Fatal(err)
	}

	// Fine-tune: same run, but warm-started. core.Job seeds models from
	// its Seed; to warm-start we wrap the strategy with a pre-seeded
	// reference via WarmStart.
	fineJob := *job
	fine, err := (&core.SoCFlow{NumGroups: 8, Mixed: core.MixedOff, WarmStart: pretrained}).Run(context.Background(), &fineJob, clu)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %12s %12s\n", "variant", "epoch-1 acc", "best acc")
	fmt.Printf("%-12s %11.1f%% %11.1f%%\n", "from scratch", 100*scratch.EpochAccuracies[0], 100*scratch.BestAccuracy)
	fmt.Printf("%-12s %11.1f%% %11.1f%%\n", "fine-tuned", 100*fine.EpochAccuracies[0], 100*fine.BestAccuracy)
	fmt.Println("\ntransfer learning starts far ahead and converges in a fraction of the epochs,")
	fmt.Println("which is why the paper's ResNet50-Finetune rows finish fastest (Fig. 8).")
}
