// Mixedprecision: a walkthrough of §3.2's α/β controller on a single
// SoC. The mini-batch is split between the CPU (FP32) and the NPU
// (INT8 on a persistent grid); α is re-probed each epoch and the data
// split follows max(e^−α, 1−β).
package main

import (
	"fmt"
	"log"

	"socflow/internal/cluster"
	"socflow/internal/core"
	"socflow/internal/dataset"
	"socflow/internal/nn"
	"socflow/internal/tensor"
)

func main() {
	spec := nn.MustSpec("vgg11")
	prof := dataset.MustProfile("cifar10")
	pool := prof.Generate(dataset.GenOptions{Samples: 600, Seed: 11})
	train, val := pool.Split(0.85)

	// β comes from profiling both processors once (§3.2).
	clu := cluster.New(cluster.Config{NumSoCs: 1})
	beta := clu.ComputeRatio(0, spec, 64)
	fmt.Printf("profiled compute-power ratio β = %.2f (NPU takes up to %.0f%% of each batch)\n", beta, 100*beta)

	root := tensor.NewRNG(11)
	ref := spec.BuildMicro(root, train.Channels(), train.ImageSize(), train.Classes)
	build := func() *nn.Sequential {
		return spec.BuildMicro(root.Split(1), train.Channels(), train.ImageSize(), train.Classes)
	}
	mp := core.NewMixedPrecision(ref, build, 0.02, 0.9, beta, root.Split(2))

	it := dataset.NewBatchIterator(train, 32, 5)
	fmt.Printf("\n%5s %7s %10s %12s %10s\n", "epoch", "α", "cpu share", "batch split", "val acc")
	for epoch := 1; epoch <= 10; epoch++ {
		for i := 0; i < it.BatchesPerEpoch(); i++ {
			x, labels := it.Next()
			mp.Step(x, labels)
		}
		mp.EndEpoch(val, 32)
		cpuN, npuN := mp.SplitBatch(32)
		acc := accuracy(mp.FP32, val)
		fmt.Printf("%5d %7.3f %9.0f%% %6d/%-5d %9.1f%%\n",
			epoch, mp.Alpha, 100*mp.CPUShare(), cpuN, npuN, 100*acc)
	}

	fmt.Println("\nα tracks how well the INT8 replica keeps up with the FP32 one:")
	fmt.Println("when it drifts the CPU share rises to protect accuracy, and when it")
	fmt.Println("recovers the NPU gets the data back for speed (Fig. 14).")
}

func accuracy(m *nn.Sequential, d *dataset.Dataset) float64 {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	x, labels := d.Batch(idx)
	if len(labels) == 0 {
		log.Fatal("empty validation set")
	}
	return nn.Accuracy(m.Forward(x, false), labels)
}
