package socflow

import "errors"

// Sentinel validation errors. Every configuration error returned by
// Run, RunDistributed, and PlanTopology wraps one of these, so callers
// can branch with errors.Is instead of matching message strings; the
// wrapped message still carries the offending value.
var (
	// ErrUnknownModel reports a model name outside Models().
	ErrUnknownModel = errors.New("socflow: unknown model")
	// ErrUnknownDataset reports a dataset name outside Datasets().
	ErrUnknownDataset = errors.New("socflow: unknown dataset")
	// ErrUnknownStrategy reports a strategy name outside Strategies().
	ErrUnknownStrategy = errors.New("socflow: unknown strategy")
	// ErrUnknownMixedMode reports a Mixed value outside
	// auto/fp32/int8/half.
	ErrUnknownMixedMode = errors.New("socflow: unknown mixed mode")
	// ErrUnknownGeneration reports a Generation value outside
	// sd865/sd8gen1.
	ErrUnknownGeneration = errors.New("socflow: unknown SoC generation")
	// ErrUnknownInt8Kernels reports an Int8Kernels value outside
	// ""/exact/mitchell.
	ErrUnknownInt8Kernels = errors.New("socflow: unknown INT8 kernel multiplier")
	// ErrBadTopology reports inconsistent PlanTopology arguments.
	ErrBadTopology = errors.New("socflow: invalid topology")
	// ErrBadOption reports an invalid option combination — a heartbeat
	// timeout not exceeding its interval, a non-positive checkpoint
	// stride, a negative retry budget. Options are validated before any
	// work starts, so a run never begins with knobs it would ignore or
	// misapply.
	ErrBadOption = errors.New("socflow: invalid option")
	// ErrBadModelSpec reports an invalid RegisterModel specification.
	ErrBadModelSpec = errors.New("socflow: invalid model spec")
	// ErrUnknownParallelism reports a Config.Parallelism value outside
	// ""/data/auto/pipeline, or one combined with a baseline strategy.
	ErrUnknownParallelism = errors.New("socflow: unknown parallelism")
	// ErrBadPlan reports a WithPlan plan that fails validation or does
	// not match the configured cluster.
	ErrBadPlan = errors.New("socflow: invalid parallelization plan")
)
