package socflow

import (
	"bytes"
	"context"
	"errors"
	"log"
	"strings"
	"testing"
)

// The options tune execution, never results: the same seeded job must
// produce bit-identical accuracies and simulated time at any
// parallelism level (DESIGN.md, "host parallelism vs. simulated
// concurrency").
func TestParallelismInvariance(t *testing.T) {
	seq, err := Run(context.Background(), fastCfg("socflow"), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), fastCfg("socflow"), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.EpochAccuracies) != len(par.EpochAccuracies) {
		t.Fatalf("epoch counts differ: %d vs %d", len(seq.EpochAccuracies), len(par.EpochAccuracies))
	}
	for e := range seq.EpochAccuracies {
		if seq.EpochAccuracies[e] != par.EpochAccuracies[e] {
			t.Fatalf("epoch %d accuracy diverged: %v (p=1) vs %v (p=8)",
				e, seq.EpochAccuracies[e], par.EpochAccuracies[e])
		}
	}
	if seq.SimSeconds != par.SimSeconds || seq.FinalAccuracy != par.FinalAccuracy {
		t.Fatalf("results not bit-identical: %v/%v vs %v/%v",
			seq.FinalAccuracy, seq.SimSeconds, par.FinalAccuracy, par.SimSeconds)
	}
}

// cancelAfterWriter cancels a context after n writes; wiring it as the
// trace writer cancels the run from inside the epoch boundary.
type cancelAfterWriter struct {
	n      int
	cancel context.CancelFunc
	buf    bytes.Buffer
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	w.n--
	if w.n <= 0 {
		w.cancel()
	}
	return len(p), nil
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{n: 1, cancel: cancel}

	cfg := fastCfg("socflow") // 6 epochs; we cancel after the first
	_, err := Run(ctx, cfg, WithTrace(w))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(w.buf.String(), "epoch 1") {
		t.Fatalf("trace missing first epoch line: %q", w.buf.String())
	}
	if strings.Count(w.buf.String(), "epoch") > 2 {
		t.Fatalf("run kept training after cancel: %q", w.buf.String())
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, fastCfg("socflow")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunDistributedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{n: 1, cancel: cancel}

	_, err := RunDistributed(ctx, DistributedConfig{
		JobSpec:   JobSpec{Epochs: 6, TrainSamples: 300, ValSamples: 60},
		NumSoCs:   4,
		Groups:    2,
		InProcess: true,
	}, WithTrace(w))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// Injected crashes without degradation must fail fast (first-error
// teardown, not a deadlock) and name the failed worker; with
// degradation the same job completes on the survivors.
func TestRunDistributedFaultInjection(t *testing.T) {
	cfg := DistributedConfig{
		JobSpec:       JobSpec{Epochs: 3, TrainSamples: 240, ValSamples: 60},
		NumSoCs:       4,
		Groups:        2,
		InProcess:     true,
		InjectCrashes: 1,
	}
	if _, err := RunDistributed(context.Background(), cfg); err == nil {
		t.Fatal("injected crash without degradation must fail the run")
	} else if !strings.Contains(err.Error(), "worker") {
		t.Fatalf("error must name the failed worker: %v", err)
	}

	cfg.DegradeOnFault = true
	rep, err := RunDistributed(context.Background(), cfg)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if len(rep.EpochAccuracies) != 3 || rep.BestAccuracy <= 0 {
		t.Fatalf("degraded run incomplete: %+v", rep)
	}
}

func TestTraceAndLogger(t *testing.T) {
	var trace, logs bytes.Buffer
	cfg := fastCfg("socflow")
	cfg.Epochs = 2
	if _, err := Run(context.Background(), cfg,
		WithTrace(&trace), WithLogger(log.New(&logs, "", 0))); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(trace.String(), "epoch"); got != 2 {
		t.Fatalf("trace lines: %d, want 2 (%q)", got, trace.String())
	}
	if !strings.Contains(logs.String(), "run: SoCFlow") {
		t.Fatalf("logger missing run line: %q", logs.String())
	}
}
