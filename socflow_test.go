package socflow

import (
	"context"
	"errors"
	"testing"
	"time"

	"socflow/internal/core"
)

func fastCfg(strategy string) Config {
	return Config{
		JobSpec: JobSpec{
			Model:        "lenet5",
			Dataset:      "fmnist",
			GlobalBatch:  16,
			Epochs:       6,
			TrainSamples: 240,
			ValSamples:   60,
			Seed:         3,
		},
		Strategy: strategy,
		NumSoCs:  16,
		Groups:   4,
	}
}

func TestRunDefaultsAndLearns(t *testing.T) {
	rep, err := Run(context.Background(), fastCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != "SoCFlow" || rep.Model != "lenet5" || rep.Dataset != "fmnist" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if len(rep.EpochAccuracies) != 6 {
		t.Fatalf("epochs recorded: %d", len(rep.EpochAccuracies))
	}
	if rep.SimSeconds <= 0 || rep.EnergyKJ <= 0 || rep.MeanEpochSeconds <= 0 {
		t.Fatalf("performance fields missing: %+v", rep)
	}
	if rep.EstimatedHoursToConverge <= 0 {
		t.Fatal("extrapolation missing")
	}
	if rep.BestAccuracy <= 0.1 {
		t.Fatalf("did not learn: %v", rep.BestAccuracy)
	}
}

func TestRunEveryStrategy(t *testing.T) {
	for _, s := range Strategies() {
		s := s
		t.Run(s, func(t *testing.T) {
			rep, err := Run(context.Background(), fastCfg(s))
			if err != nil {
				t.Fatal(err)
			}
			if rep.SimSeconds <= 0 {
				t.Fatalf("%s: no simulated time", s)
			}
		})
	}
}

func TestRunMixedModes(t *testing.T) {
	for _, m := range []string{"auto", "fp32", "int8", "half"} {
		cfg := fastCfg("socflow")
		cfg.Mixed = m
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Fatalf("mixed mode %q: %v", m, err)
		}
	}
}

// TestRunInt8Kernels drives the NPU replicas through the true-INT8
// GEMM datapath (int8×int8→int32 with a pluggable multiplier) instead
// of the simulated fake-quantized float path, with both the exact and
// the Mitchell logarithmic multiplier.
func TestRunInt8Kernels(t *testing.T) {
	for _, k := range []string{"exact", "mitchell"} {
		cfg := fastCfg("socflow")
		cfg.Epochs = 2
		cfg.Int8Kernels = k
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Int8Kernels %q: %v", k, err)
		}
		if !(rep.BestAccuracy > 0.1) {
			t.Fatalf("Int8Kernels %q: did not learn: %v", k, rep.BestAccuracy)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cases := []struct {
		cfg  Config
		want error
	}{
		{Config{JobSpec: JobSpec{Model: "alexnet"}}, ErrUnknownModel},
		{Config{JobSpec: JobSpec{Dataset: "imagenet"}}, ErrUnknownDataset},
		{Config{Strategy: "magic"}, ErrUnknownStrategy},
		{Config{Mixed: "fp64"}, ErrUnknownMixedMode},
		{Config{Generation: "sd999"}, ErrUnknownGeneration},
		{Config{Int8Kernels: "booth"}, ErrUnknownInt8Kernels},
	}
	for _, c := range cases {
		_, err := Run(context.Background(), c.cfg)
		if err == nil {
			t.Fatalf("config %+v should be rejected", c.cfg)
		}
		if !errors.Is(err, c.want) {
			t.Fatalf("config %+v: got %v, want errors.Is(%v)", c.cfg, err, c.want)
		}
	}
}

func TestSubmitWaitMatchesRun(t *testing.T) {
	rep, err := Run(context.Background(), fastCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	h, err := defaultClient().Submit(context.Background(), fastCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.EpochAccuracies) != len(rep.EpochAccuracies) {
		t.Fatalf("epoch counts differ: %d vs %d", len(got.EpochAccuracies), len(rep.EpochAccuracies))
	}
	for i := range got.EpochAccuracies {
		if got.EpochAccuracies[i] != rep.EpochAccuracies[i] {
			t.Fatalf("epoch %d: submit %v vs run %v", i, got.EpochAccuracies[i], rep.EpochAccuracies[i])
		}
	}
	if got.SimSeconds != rep.SimSeconds {
		t.Fatalf("sim time differs: %v vs %v", got.SimSeconds, rep.SimSeconds)
	}
	st, err := h.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("finished handle state = %s", st.State)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a, err := Run(context.Background(), fastCfg("socflow"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), fastCfg("socflow"))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.SimSeconds != b.SimSeconds {
		t.Fatalf("same seed must reproduce: %v/%v vs %v/%v",
			a.FinalAccuracy, a.SimSeconds, b.FinalAccuracy, b.SimSeconds)
	}
}

func TestCatalogs(t *testing.T) {
	// The model catalog is a registry other tests may extend, so check
	// containment of the five built-ins rather than an exact count.
	have := map[string]bool{}
	for _, m := range Models() {
		have[m] = true
	}
	for _, m := range []string{"lenet5", "vgg11", "resnet18", "mobilenetv1", "resnet50"} {
		if !have[m] {
			t.Fatalf("builtin model %q missing from catalog %v", m, Models())
		}
	}
	if len(Datasets()) != 5 || len(Strategies()) != 7 {
		t.Fatalf("catalogs: %d datasets, %d strategies", len(Datasets()), len(Strategies()))
	}
}

func TestPlanTopology(t *testing.T) {
	rep, err := PlanTopology(15, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 5 || len(rep.SplitGroups) != 2 || len(rep.CommunicationGroups) != 2 {
		t.Fatalf("paper-example topology wrong: %+v", rep)
	}
	_, err = PlanTopology(4, 8, 5)
	if err == nil {
		t.Fatal("impossible topology must error")
	}
	if !errors.Is(err, ErrBadTopology) {
		t.Fatalf("want ErrBadTopology, got %v", err)
	}
}

func TestTidalHelpers(t *testing.T) {
	prof := TidalProfile()
	if len(prof) != 24 {
		t.Fatalf("profile hours: %d", len(prof))
	}
	_, hours := IdleWindow(0.2)
	if hours < 4 {
		t.Fatalf("idle window %v h, expected the paper's ~4h+ slot", hours)
	}
}

func TestRunAutoGroups(t *testing.T) {
	cfg := fastCfg("socflow")
	cfg.Groups = -1
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestAccuracy <= 0 {
		t.Fatal("auto-grouped run produced nothing")
	}
}

func TestRunDistributedFacade(t *testing.T) {
	rep, err := RunDistributed(context.Background(), DistributedConfig{
		JobSpec: JobSpec{
			Epochs:       4,
			TrainSamples: 300,
			ValSamples:   60,
		},
		NumSoCs:   6,
		Groups:    2,
		InProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EpochAccuracies) != 4 || len(rep.Topology) != 2 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.BestAccuracy < 0.3 {
		t.Fatalf("distributed facade failed to learn: %v", rep.BestAccuracy)
	}
}

func TestRunDistributedFacadeTCP(t *testing.T) {
	rep, err := RunDistributed(context.Background(), DistributedConfig{
		JobSpec: JobSpec{
			Epochs:       2,
			TrainSamples: 160,
			ValSamples:   40,
		},
		NumSoCs: 4,
		Groups:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EpochAccuracies) != 2 {
		t.Fatalf("TCP facade incomplete: %+v", rep)
	}
}

// PreemptWindows route through the elastic track: the departure is
// detected by heartbeat, the return re-admitted with a state transfer,
// and the report carries the recovery summary.
func TestRunDistributedElasticPreemptWindow(t *testing.T) {
	rep, err := RunDistributed(context.Background(), DistributedConfig{
		JobSpec: JobSpec{
			Epochs:       5,
			TrainSamples: 300,
			ValSamples:   60,
		},
		NumSoCs:        6,
		Groups:         2,
		InProcess:      true,
		PreemptWindows: []PreemptWindow{{SoC: 4, Epoch: 1, Return: 3}},
	}, WithHeartbeat(5*time.Millisecond, 250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EpochAccuracies) != 5 {
		t.Fatalf("elastic facade incomplete: %+v", rep)
	}
	s := rep.Recovery
	if s == nil {
		t.Fatal("elastic run must report recovery stats")
	}
	if s.Detections < 1 || s.Rejoins != 1 || s.StateTransferBytes <= 0 {
		t.Fatalf("preemption window not absorbed: %+v", s)
	}
	if rep.BestAccuracy < 0.3 {
		t.Fatalf("elastic facade failed to learn: %v", rep.BestAccuracy)
	}
}

// WithCheckpointEvery and WithRecovery arm the simulated track's
// auto-checkpointing and epoch-retry machinery.
func TestRunCheckpointAndRecoveryOptions(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(context.Background(), Config{
		JobSpec: JobSpec{Epochs: 4, TrainSamples: 240, ValSamples: 48},
		NumSoCs: 8,
		Groups:  2,
	}, WithCheckpointEvery(2, dir), WithRecovery(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EpochAccuracies) != 4 {
		t.Fatalf("run incomplete: %+v", rep)
	}
	store, err := core.NewCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := store.Latest()
	if err != nil || cp == nil {
		t.Fatalf("no auto-checkpoint persisted: %v", err)
	}
	if cp.Epoch != 4 {
		t.Fatalf("latest auto-checkpoint epoch = %d, want 4", cp.Epoch)
	}
}

func TestRunDistributedFacadeRejectsBadModel(t *testing.T) {
	_, err := RunDistributed(context.Background(), DistributedConfig{JobSpec: JobSpec{Model: "gpt3"}})
	if err == nil {
		t.Fatal("unknown model must error")
	}
	if !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
}
