module socflow

go 1.22
