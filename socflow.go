// Package socflow is a Go reproduction of "SoCFlow: Efficient and
// Scalable DNN Training on SoC-Clustered Edge Servers" (ASPLOS 2024).
//
// SoCFlow trains DNN models on edge servers built from tens of mobile
// SoCs by (1) dividing the SoCs into logical groups that synchronize
// per batch over Ring-AllReduce and aggregate across groups only once
// per epoch, with an integrity-greedy logical-to-physical mapping and
// contention-free communication-group scheduling, and (2) splitting
// every mini-batch between the mobile CPU (FP32) and NPU (INT8) with a
// confidence/compute-ratio controller.
//
// Because the original system needs a physical Snapdragon 865 cluster,
// this package runs on a dual-track simulation: the training math
// (SGD, INT8 quantization, topology-faithful aggregation) is executed
// for real on micro-scale models and synthetic datasets, while time and
// energy come from a discrete-event model of the SoC-Cluster calibrated
// to the paper's measurements. See DESIGN.md for the substitution
// table and EXPERIMENTS.md for paper-vs-measured results.
//
// Quickstart:
//
//	report, err := socflow.Run(ctx, socflow.Config{
//		JobSpec: socflow.JobSpec{Model: "vgg11", Dataset: "cifar10", Epochs: 10},
//		NumSoCs: 32,
//		Groups:  8,
//	}, socflow.WithParallelism(runtime.NumCPU()))
package socflow

import (
	"context"
	"fmt"

	"socflow/internal/baselines"
	"socflow/internal/cluster"
	"socflow/internal/core"
	"socflow/internal/dataset"
	"socflow/internal/metrics"
	"socflow/internal/nn"
	"socflow/internal/plan"
	"socflow/internal/quant"
)

// JobSpec holds the fields shared by every entry point: model,
// dataset, epochs, batch, SGD hyperparameters, seed, and micro-dataset
// sizes. Config and DistributedConfig both embed it.
type JobSpec = core.JobSpec

// defaultRunSpec fills Config's zero JobSpec fields.
var defaultRunSpec = JobSpec{
	Model:        "vgg11",
	Dataset:      "cifar10",
	Epochs:       10,
	GlobalBatch:  16,
	LR:           0.02,
	Momentum:     0.9,
	Seed:         1,
	TrainSamples: 768,
	ValSamples:   128,
}

// Config describes a training run. Zero values select sensible
// defaults (noted per field).
type Config struct {
	// JobSpec carries the shared job fields. Defaults: Model "vgg11"
	// (one of Models()), Dataset "cifar10" (one of Datasets()),
	// Epochs 10, GlobalBatch 16 (functional mini-batch per logical
	// group, sized to the micro datasets), LR 0.02, Momentum 0.9,
	// Seed 1, TrainSamples 768, ValSamples 128.
	JobSpec
	// Strategy is one of Strategies(): "socflow" (default), "ps",
	// "ring", "hipress", "2dparal", "fedavg", "tfedavg".
	Strategy string
	// NumSoCs is the fleet size (default 32, the paper's main setting).
	NumSoCs int
	// Groups is SoCFlow's logical-group count N (default 8; ignored by
	// baselines). Set to -1 to let the warm-up heuristic pick N
	// (§3.1's first-epoch-accuracy knee rule).
	Groups int
	// Mixed selects SoCFlow's processor mode: "auto" (default),
	// "fp32", "int8", "half".
	Mixed string
	// Parallelism selects how the batch is split across a logical
	// group's SoCs (strategy "socflow" only):
	//
	//   - "" or "data": data-parallel SSGD (the paper's protocol);
	//   - "auto": the auto-parallelization planner (internal/plan)
	//     searches group count × pipeline depth × placement over the
	//     simnet cost model and runs whichever hybrid prices fastest —
	//     Groups caps the group count it may spend;
	//   - "pipeline": the planner restricted to pipeline-parallel
	//     candidates (GPipe-style micro-batching, stage parameters
	//     resident on their SoC, no per-iteration gradient traffic).
	//
	// Like every config field — and unlike options — this changes what
	// the run computes: pipeline plans see micro-batch batch-norm
	// statistics and per-epoch (not per-iteration) group averaging.
	Parallelism string
	// Int8Kernels selects the NPU replica's GEMM datapath: "" (default)
	// simulates integer execution with fake-quantized float32 GEMMs;
	// "exact" runs true int8×int8→int32 kernels with the precise
	// multiplier; "mitchell" uses Mitchell's logarithmic approximate
	// multiplier, modeling approximate-computing accelerators.
	Int8Kernels string
	// PaperBatch is the batch size the performance track prices
	// (default 64, the paper's BS_g; 256 for MobileNet).
	PaperBatch int
	// TargetAccuracy stops early when validation accuracy reaches it.
	TargetAccuracy float64
	// Generation selects the SoC silicon: "sd865" (default) or
	// "sd8gen1".
	Generation string
}

func (c Config) withDefaults() Config {
	c.JobSpec = c.JobSpec.WithDefaults(defaultRunSpec)
	if c.Strategy == "" {
		c.Strategy = "socflow"
	}
	if c.NumSoCs == 0 {
		c.NumSoCs = 32
	}
	if c.Groups == 0 {
		c.Groups = 8
	}
	if c.Groups < 0 {
		c.Groups = -1 // auto via the warm-up heuristic
	}
	if c.Mixed == "" {
		c.Mixed = "auto"
	}
	if c.PaperBatch == 0 {
		c.PaperBatch = 64
	}
	if c.Generation == "" {
		c.Generation = "sd865"
	}
	return c
}

// Models returns the model catalog (Table 2 of the paper).
func Models() []string { return nn.ModelNames() }

// Datasets returns the dataset catalog (Table 2 of the paper).
func Datasets() []string { return dataset.Names() }

// Strategies returns the available strategies: SoCFlow plus the six
// baselines of §4.1.
func Strategies() []string {
	return []string{"socflow", "ps", "ring", "hipress", "2dparal", "fedavg", "tfedavg"}
}

// Report is the outcome of a run.
type Report struct {
	// Strategy is the strategy that produced the report.
	Strategy string
	// Model and Dataset echo the configuration.
	Model, Dataset string
	// EpochAccuracies is validation accuracy after each epoch.
	EpochAccuracies []float64
	// FinalAccuracy and BestAccuracy summarize convergence.
	FinalAccuracy, BestAccuracy float64
	// SimSeconds is the simulated wall time of the run at paper scale.
	SimSeconds float64
	// MeanEpochSeconds is the average simulated epoch time.
	MeanEpochSeconds float64
	// EnergyKJ is the fleet training energy in kilojoules.
	EnergyKJ float64
	// ComputeSeconds, SyncSeconds, UpdateSeconds attribute the
	// fleet-aggregated simulated time (Fig. 12's breakdown).
	ComputeSeconds, SyncSeconds, UpdateSeconds float64
	// EpochsToTarget and SimSecondsToTarget are set when
	// TargetAccuracy was reached.
	EpochsToTarget     int
	SimSecondsToTarget float64
	// EstimatedHoursToConverge extrapolates end-to-end training time to
	// the paper-scale epoch count of the model.
	EstimatedHoursToConverge float64
	// Preemptions counts logical-group preemptions served.
	Preemptions int
	// Metrics is a snapshot of the run's observability registry —
	// counters, gauges, histograms, dual-clock epoch stats, and spans —
	// when WithMetrics, WithTrace, or WithLogger was used (nil
	// otherwise). Export it with WriteJSON or WriteChromeTrace.
	Metrics *metrics.RunReport
}

// Run executes one training run per the configuration. Cancelling ctx
// stops training between iterations and returns ctx.Err(). Options
// tune execution (parallelism, tracing, logging) without changing
// results: seeded runs are bit-identical at every parallelism level.
//
// Run is a submit-and-wait wrapper over the in-process control plane:
// the job flows through the same scheduler as Client.Submit and a
// socflow-server daemon, against an unbounded cluster so it starts
// immediately. For concurrent jobs, quotas, priorities, and preemption,
// use NewServer/Client directly.
func Run(ctx context.Context, cfg Config, opts ...Option) (*Report, error) {
	h, err := defaultClient().Submit(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

func buildJob(cfg Config) (*core.Job, *cluster.Cluster, error) {
	spec, err := nn.GetSpec(cfg.Model)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownModel, cfg.Model, Models())
	}
	prof, err := dataset.GetProfile(cfg.Dataset)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownDataset, cfg.Dataset, Datasets())
	}
	var gen cluster.SoCGeneration
	switch cfg.Generation {
	case "sd865":
		gen = cluster.Gen865
	case "sd8gen1":
		gen = cluster.Gen8Gen1
	default:
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownGeneration, cfg.Generation)
	}
	clu := cluster.New(cluster.Config{NumSoCs: cfg.NumSoCs, Generation: gen})
	// Train and validation must come from one generation pass so they
	// share class prototypes.
	pool := prof.Generate(dataset.GenOptions{Samples: cfg.TrainSamples + cfg.ValSamples, Seed: cfg.Seed})
	train, val := pool.Split(float64(cfg.TrainSamples) / float64(pool.Len()))
	job := &core.Job{
		Spec:           spec,
		Train:          train,
		Val:            val,
		PaperSamples:   prof.PaperTrainN,
		GlobalBatch:    cfg.GlobalBatch,
		PaperBatch:     cfg.PaperBatch,
		LR:             cfg.LR,
		Momentum:       cfg.Momentum,
		Epochs:         cfg.Epochs,
		TargetAccuracy: cfg.TargetAccuracy,
		Seed:           cfg.Seed,
	}
	return job, clu, nil
}

// PlanParallelism runs the auto-parallelization planner for cfg and
// returns the winning plan: the enumeration of group count × pipeline
// depth × placement priced on the simnet cost model (see
// Config.Parallelism). The plan can be inspected (String, EpochSeconds
// vs DataEpochSeconds) and executed via WithPlan. Deterministic: equal
// configs return the identical plan.
func PlanParallelism(cfg Config) (*ParallelPlan, error) {
	cfg = cfg.withDefaults()
	job, clu, err := buildJob(cfg)
	if err != nil {
		return nil, err
	}
	opts := plan.Options{
		Spec:        job.Spec,
		Cluster:     clu,
		GlobalBatch: cfg.PaperBatch,
		Samples:     job.PaperSamples,
	}
	if cfg.Groups > 0 {
		opts.MaxGroups = cfg.Groups
	}
	if cfg.Parallelism == "pipeline" {
		opts.Only = plan.ModePipeline
	}
	p, err := plan.Search(opts)
	if err != nil {
		return nil, fmt.Errorf("socflow: planner: %w", err)
	}
	return p, nil
}

// strategyFromPlan maps a parallelization plan onto an executor: the
// Pipeline strategy for pipeline plans, the paper's grouped protocol
// at the plan's group count for data plans.
func strategyFromPlan(cfg Config, p *ParallelPlan) (core.Strategy, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlan, err)
	}
	if p.NumSoCs != cfg.NumSoCs {
		return nil, fmt.Errorf("%w: plan places %d SoCs, cluster has %d", ErrBadPlan, p.NumSoCs, cfg.NumSoCs)
	}
	if p.Mode == plan.ModePipeline {
		return &core.Pipeline{Plan: p}, nil
	}
	mode, err := mixedMode(cfg.Mixed)
	if err != nil {
		return nil, err
	}
	mul, err := quant.MultiplierByName(cfg.Int8Kernels)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have \"\", exact, mitchell)", ErrUnknownInt8Kernels, cfg.Int8Kernels)
	}
	return &core.SoCFlow{NumGroups: p.Groups(), Mixed: mode, Int8Mul: mul}, nil
}

func buildStrategy(ctx context.Context, cfg Config, o runOptions) (core.Strategy, error) {
	if o.plan != nil {
		return strategyFromPlan(cfg, o.plan)
	}
	switch cfg.Parallelism {
	case "", "data":
		// The paper's data-parallel protocol — the strategy switch below.
	case "auto", "pipeline":
		if cfg.Strategy != "socflow" {
			return nil, fmt.Errorf("%w: Parallelism %q requires strategy \"socflow\", got %q",
				ErrUnknownParallelism, cfg.Parallelism, cfg.Strategy)
		}
		p, err := PlanParallelism(cfg)
		if err != nil {
			return nil, err
		}
		return strategyFromPlan(cfg, p)
	default:
		return nil, fmt.Errorf("%w: %q (have \"\", data, auto, pipeline)", ErrUnknownParallelism, cfg.Parallelism)
	}
	switch cfg.Strategy {
	case "socflow":
		mode, err := mixedMode(cfg.Mixed)
		if err != nil {
			return nil, err
		}
		mul, err := quant.MultiplierByName(cfg.Int8Kernels)
		if err != nil {
			return nil, fmt.Errorf("%w: %q (have \"\", exact, mitchell)", ErrUnknownInt8Kernels, cfg.Int8Kernels)
		}
		groups := cfg.Groups
		if groups < 0 {
			job, clu, err := buildJob(cfg)
			if err != nil {
				return nil, err
			}
			groups, err = core.AutoGroupCount(ctx, job, clu, cfg.NumSoCs, 0.5)
			if err != nil {
				return nil, fmt.Errorf("socflow: group-size heuristic: %w", err)
			}
		}
		return &core.SoCFlow{NumGroups: groups, Mixed: mode, Int8Mul: mul}, nil
	case "ps":
		return baselines.NewParameterServer(), nil
	case "ring":
		return baselines.NewRing(), nil
	case "hipress":
		return baselines.NewHiPress(), nil
	case "2dparal":
		return baselines.NewTwoDParallel(), nil
	case "fedavg":
		return baselines.NewFedAvg(), nil
	case "tfedavg":
		return baselines.NewTreeFedAvg(), nil
	default:
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownStrategy, cfg.Strategy, Strategies())
	}
}

func mixedMode(s string) (core.MixedMode, error) {
	switch s {
	case "auto":
		return core.MixedAuto, nil
	case "fp32":
		return core.MixedOff, nil
	case "int8":
		return core.MixedINT8Only, nil
	case "half":
		return core.MixedHalf, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownMixedMode, s)
	}
}
