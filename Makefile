GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./ ./internal/parallel ./internal/tensor ./internal/nn \
		./internal/core ./internal/runtime ./internal/transport

bench:
	$(GO) test -bench 'BenchmarkConv2DForward|BenchmarkGroupEpoch' -benchtime 2x -run '^$$' .

ci: vet build test race
