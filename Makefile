GO ?= go

.PHONY: all build vet test race bench bench-compare bench-report ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./ ./internal/parallel ./internal/tensor ./internal/nn \
		./internal/core ./internal/runtime ./internal/transport ./internal/metrics

bench:
	$(GO) test -bench 'BenchmarkConv2DForward|BenchmarkGroupEpoch' -benchtime 2x -run '^$$' .

# Allocation-regression gate: reruns the hot-path benchmarks with
# -benchmem, compares parallelism=1 allocs/op against the committed
# baseline (scripts/bench_baseline.txt), fails on a >10% regression,
# and emits BENCH_pr4.json.
bench-compare:
	./scripts/bench_compare.sh

# Scalability experiment with the observability subsystem on: emits the
# structured run report (tables + metrics snapshot) and a Perfetto-
# loadable Chrome trace.
bench-report:
	$(GO) run ./cmd/socflow-bench --exp scalability --samples 480 --epochs 6 \
		--metrics-out BENCH_pr3.json --trace-out BENCH_pr3.trace.json

ci: vet build test race
