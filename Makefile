GO ?= go

.PHONY: all build vet test race chaos bench bench-compare bench-report bench-elastic server-smoke serve-smoke bench-colocation bench-autopar bench-replan ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./ ./internal/parallel ./internal/tensor ./internal/nn \
		./internal/core ./internal/runtime ./internal/transport ./internal/metrics \
		./internal/serve ./internal/server ./internal/plan

# Seeded chaos suite: randomized crash/straggle/link-drop/rejoin
# schedules against the elastic recovery track, under the race
# detector. Every schedule must converge or tear down cleanly with
# worker-named errors.
chaos:
	$(GO) test -race -run 'TestChaos|TestElastic' -count 1 ./internal/runtime

# Control-plane smoke gate: a socflow-server daemon handler takes jobs
# from two tenants over real HTTP under the race detector, asserting
# completion, per-tenant quota enforcement, and deterministic reports.
server-smoke:
	$(GO) test -race -run TestServerSmoke -count 1 .

# Serving smoke gate: a low-tide serving window through the facade must
# hold >= 99% SLO attainment with deterministic reports, under the race
# detector (the batcher, replay loop, and pipeline engine all engage).
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke|TestServeOverHTTP' -count 1 .

bench:
	$(GO) test -bench 'BenchmarkConv2DForward|BenchmarkGroupEpoch' -benchtime 2x -run '^$$' .

# Benchmark-regression gate: reruns the hot-path benchmarks with
# -benchmem and compares them against the committed baseline
# (scripts/bench_baseline.txt). Fails on a >10% allocs/op regression
# (parallelism 1 and 4) or a >35% parallelism=1 ns/op regression, and
# emits BENCH_pr7.json with the speedup record.
bench-compare:
	./scripts/bench_compare.sh

# Elastic-recovery experiment: tidal-trace preemption + return against
# the heartbeat/retry/rejoin machinery, with the degrade→rejoin curve
# and recovery counters in the emitted report.
bench-elastic:
	$(GO) run ./cmd/socflow-bench --exp elastic --samples 480 --epochs 8 \
		--metrics-out BENCH_pr5.json

# Scalability experiment with the observability subsystem on: emits the
# structured run report (tables + metrics snapshot) and a Perfetto-
# loadable Chrome trace.
# Co-location experiment: the SLO-batched serving plane resizes with
# the diurnal tide on one control plane while preemptible training
# parks and resumes underneath it; emits the hourly sweep, serving
# quantiles, SLO attainment, and training throughput as BENCH_pr8.json.
bench-colocation:
	$(GO) run ./cmd/socflow-bench --exp colocation --samples 480 \
		--metrics-out BENCH_pr8.json

# Auto-parallelization experiment: the planner searches group count ×
# pipeline depth × placement over the simnet cost model and the table
# shows the searched hybrid beating pure and grouped data parallelism
# on ResNet-34 at 8/16/32 SoCs, with predicted epoch time equal to the
# executed one; emits BENCH_pr9.json.
bench-autopar:
	$(GO) run ./cmd/socflow-bench --exp autopar --samples 480 --epochs 6 \
		--metrics-out BENCH_pr9.json

# Elastic re-planning experiment: the pipeline track under a permanent
# stage crash and a tidal shrink, with planner-driven recovery. The
# harness asserts the fault-free elastic run bit-identical to the
# plain pipeline and every adopted re-plan's predicted epoch seconds
# equal to the executed ones; emits BENCH_pr10.json.
bench-replan:
	$(GO) run ./cmd/socflow-bench --exp replan --samples 300 --epochs 5 \
		--metrics-out BENCH_pr10.json

bench-report:
	$(GO) run ./cmd/socflow-bench --exp scalability --samples 480 --epochs 6 \
		--metrics-out BENCH_pr3.json --trace-out BENCH_pr3.trace.json

ci: vet build test race server-smoke serve-smoke
