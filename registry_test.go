package socflow

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// tinyPlan is a valid micro architecture usable at every catalog
// geometry: conv → pool → flatten → MLP head. The wide flattened
// head gives it enough capacity to clear chance accuracy within a
// few epochs on the micro datasets.
func tinyPlan(inC, imgSize, classes int) []Layer {
	return []Layer{
		Conv2D(8, 3, 1, 1),
		ReLU(),
		MaxPool2D(2, 2),
		Flatten(),
		Dense(32),
		ReLU(),
		Dense(classes),
	}
}

func TestRegisterModelTrainsViaRun(t *testing.T) {
	const name = "tinynet-e2e"
	if err := RegisterModel(name, ModelSpec{
		Params:        80_000,
		ForwardGFLOPs: 0.002,
		Micro:         tinyPlan,
	}); err != nil {
		t.Fatal(err)
	}

	found := false
	for _, m := range Models() {
		if m == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered model missing from catalog %v", Models())
	}

	cfg := fastCfg("")
	cfg.Model = name
	cfg.Epochs = 3
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != name || len(rep.EpochAccuracies) != 3 {
		t.Fatalf("registered model did not train: %+v", rep)
	}
	if rep.BestAccuracy <= 0.1 {
		t.Fatalf("registered model did not learn: %v", rep.BestAccuracy)
	}

	// The unknown-model error keeps listing the registered name.
	cfg.Model = "no-such-model"
	_, err = Run(context.Background(), cfg)
	if !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	if !strings.Contains(err.Error(), name) {
		t.Fatalf("unknown-model listing should include %q: %v", name, err)
	}
}

// TestRegisterModelEveryConstructor exercises the DSL constructors the
// main test's plan omits — DepthwiseConv2D, BatchNorm, Tanh,
// GlobalAvgPool — and checks the materialized model trains end to end.
func TestRegisterModelEveryConstructor(t *testing.T) {
	const name = "tinynet-dsl"
	err := RegisterModel(name, ModelSpec{
		Params:        50_000,
		ForwardGFLOPs: 0.001,
		Micro: func(inC, imgSize, classes int) []Layer {
			return []Layer{
				Conv2D(6, 3, 1, 1),
				BatchNorm(),
				Tanh(),
				MaxPool2D(2, 2),
				DepthwiseConv2D(3, 1, 1),
				ReLU(),
				GlobalAvgPool(),
				Dense(16),
				ReLU(),
				Dense(classes),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg("")
	cfg.Model = name
	cfg.Epochs = 2
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterModelRejections(t *testing.T) {
	valid := ModelSpec{Params: 1000, ForwardGFLOPs: 0.001, Micro: tinyPlan}
	cases := []struct {
		name string
		id   string
		spec ModelSpec
	}{
		{"empty name", "", valid},
		{"nil micro", "r1", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001}},
		{"zero params", "r2", ModelSpec{ForwardGFLOPs: 0.001, Micro: tinyPlan}},
		{"zero gflops", "r3", ModelSpec{Params: 1000, Micro: tinyPlan}},
		{"negative speedup", "r4", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001, NPUSpeedup: -1, Micro: tinyPlan}},
		{"builtin shadow", "lenet5", valid},
		{"dense before flatten", "r5", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001,
			Micro: func(inC, imgSize, classes int) []Layer {
				return []Layer{Conv2D(4, 3, 1, 1), Dense(classes)}
			}}},
		{"window too large", "r6", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001,
			Micro: func(inC, imgSize, classes int) []Layer {
				return []Layer{Conv2D(4, 16, 1, 0), GlobalAvgPool(), Dense(classes)}
			}}},
		{"conv after flatten", "r7", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001,
			Micro: func(inC, imgSize, classes int) []Layer {
				return []Layer{Flatten(), Conv2D(4, 3, 1, 1), Dense(classes)}
			}}},
		{"wrong head width", "r8", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001,
			Micro: func(inC, imgSize, classes int) []Layer {
				return []Layer{Conv2D(4, 3, 1, 1), GlobalAvgPool(), Dense(7)}
			}}},
		{"no head", "r9", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001,
			Micro: func(inC, imgSize, classes int) []Layer {
				return []Layer{Conv2D(4, 3, 1, 1), ReLU()}
			}}},
		{"empty plan", "r10", ModelSpec{Params: 1000, ForwardGFLOPs: 0.001,
			Micro: func(inC, imgSize, classes int) []Layer { return nil }}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := RegisterModel(c.id, c.spec)
			if err == nil {
				t.Fatal("want rejection")
			}
			if !errors.Is(err, ErrBadModelSpec) {
				t.Fatalf("want errors.Is(ErrBadModelSpec), got %v", err)
			}
		})
	}
}

func TestRegisterModelDuplicate(t *testing.T) {
	spec := ModelSpec{Params: 1000, ForwardGFLOPs: 0.001, Micro: tinyPlan}
	if err := RegisterModel("tinynet-dup", spec); err != nil {
		t.Fatal(err)
	}
	if err := RegisterModel("tinynet-dup", spec); !errors.Is(err, ErrBadModelSpec) {
		t.Fatalf("duplicate registration must fail with ErrBadModelSpec, got %v", err)
	}
}
